"""Shared fixtures for the fabric federation tests."""

import itertools

import pytest

import repro.core.task as task_module


@pytest.fixture(autouse=True)
def fresh_task_ids():
    """Make task ids deterministic per-test (and restore the shared counter)."""
    saved = task_module._task_ids
    task_module._task_ids = itertools.count(1)
    yield
    task_module._task_ids = saved
