"""Epoch-barrier alignment under wall-clock skew (per-member sealers).

Every member switch runs its own wall-clock sealer, so tick number ``n``
arrives from different members at slightly different times.  The fabric
must fold all of them into ONE coherent fabric epoch: the first arrival
of a tick drives the barrier for the whole fleet, later same-numbered
ticks are absorbed, and no packet straddles -- everything ingested
before the winning tick lands in that epoch, everything after lands in
the next, no matter which member's clock fired first.
"""

import time

import numpy as np
import pytest

from repro.fabric import FabricService, FabricTopology
from repro.service.engine import _split_trace
from repro.service.queries import FrequencyQuery, resolve

from fabric_helpers import fabric_trace, freq_task, reset_task_ids

PARAMS = {"num_groups": 3}


def build_wall_fabric(switches=2, wall_ms=60_000.0):
    """Wall-mode fabric with a tick interval far beyond the test runtime,
    so the only ticks are the ones the test injects via member_tick()."""
    reset_task_ids()
    fabric = FabricService(
        FabricTopology.preset(switches),
        epoch_wall_ms=wall_ms,
        controller_params=PARAMS,
    )
    handle = fabric.deploy(freq_task())
    return fabric, handle


class TestTickCoalescing:
    def test_first_arrival_drives_the_barrier(self):
        fabric, handle = build_wall_fabric()
        try:
            trace = fabric_trace(num_packets=3000, seed=41, blocks=4)
            fabric.ingest(trace)
            assert fabric.member_tick("edge0", 1) is True
            stats = fabric.stats()
            assert stats["sealed_epochs"] == 1
            assert stats["epoch_fill"] == 0  # nothing left straddling
            sealed = fabric._ring[-1]
            assert sealed.packets == len(trace)
        finally:
            fabric.stop()

    def test_drifted_same_tick_is_absorbed(self):
        fabric, handle = build_wall_fabric()
        try:
            trace = fabric_trace(num_packets=3000, seed=43, blocks=4)
            fabric.ingest(trace)
            assert fabric.member_tick("edge1", 1) is True
            # the slower members' clocks fire the same tick later: no-ops
            assert fabric.member_tick("edge0", 1) is False
            assert fabric.member_tick("core0", 1) is False
            assert fabric.stats()["sealed_epochs"] == 1
        finally:
            fabric.stop()

    def test_unknown_member_rejected(self):
        fabric, handle = build_wall_fabric()
        try:
            with pytest.raises(KeyError):
                fabric.member_tick("spine9", 1)
        finally:
            fabric.stop()


class TestNoStraddling:
    def test_packets_between_drifted_ticks_move_to_next_epoch(self):
        """A drifted duplicate tick must NOT seal the packets that arrived
        after the winning barrier -- they belong to the next epoch."""
        fabric, handle = build_wall_fabric()
        try:
            early = fabric_trace(num_packets=2000, seed=47, blocks=4)
            late = fabric_trace(num_packets=1000, seed=53, blocks=4)
            fabric.ingest(early)
            assert fabric.member_tick("edge0", 1) is True
            # packets arrive in the skew window before edge1's tick-1 fires
            fabric.ingest(late)
            assert fabric.member_tick("edge1", 1) is False  # absorbed
            assert fabric.stats()["epoch_fill"] == len(late)  # still open
            assert fabric.member_tick("edge1", 2) is True
            first, second = fabric._ring[-2], fabric._ring[-1]
            assert first.packets == len(early)
            assert second.packets == len(late)
        finally:
            fabric.stop()

    def test_assignment_is_deterministic_across_winner_order(self):
        """Whichever member's clock wins the race, the sealed epochs are
        bit-identical -- the barrier is keyed by tick number, not by who
        reported it."""
        traces = [
            fabric_trace(num_packets=2000, seed=59, blocks=4),
            fabric_trace(num_packets=2000, seed=61, blocks=4),
        ]
        orders = [
            [("edge0", 1), ("edge1", 1), ("edge1", 2), ("edge0", 2)],
            [("edge1", 1), ("edge0", 1), ("edge0", 2), ("edge1", 2)],
        ]
        rings = []
        for order in orders:
            fabric, handle = build_wall_fabric()
            try:
                it = iter(order)
                for trace in traces:
                    fabric.ingest(trace)
                    fabric.member_tick(*next(it))  # winner seals
                    fabric.member_tick(*next(it))  # loser absorbed
                rings.append(list(fabric._ring))
            finally:
                fabric.stop()
        assert len(rings[0]) == len(rings[1]) == 2
        for a, b in zip(*rings):
            assert a.packets == b.packets
            assert a._cells.keys() == b._cells.keys()
            for key in a._cells:
                assert np.array_equal(a._cells[key], b._cells[key]), key

    def test_out_of_order_tick_numbers_still_monotonic(self):
        """A member whose clock jumped ahead advances the barrier; stale
        lower-numbered ticks from laggards are absorbed afterwards."""
        fabric, handle = build_wall_fabric()
        try:
            fabric.ingest(fabric_trace(num_packets=1500, seed=67, blocks=4))
            assert fabric.member_tick("edge0", 3) is True
            assert fabric.member_tick("edge1", 1) is False
            assert fabric.member_tick("edge1", 2) is False
            assert fabric.member_tick("edge1", 3) is False
            assert fabric.stats()["sealed_epochs"] == 1
        finally:
            fabric.stop()


class TestIdleTicks:
    def test_idle_tick_consumes_the_number_without_sealing(self):
        fabric, handle = build_wall_fabric()
        try:
            # nothing ingested: the tick is consumed but no epoch seals
            assert fabric.member_tick("edge0", 1) is False
            assert fabric.stats()["sealed_epochs"] == 0
            trace = fabric_trace(num_packets=1500, seed=71, blocks=4)
            fabric.ingest(trace)
            # the same tick from a laggard cannot seal retroactively
            assert fabric.member_tick("edge1", 1) is False
            assert fabric.stats()["sealed_epochs"] == 0
            # the next tick seals everything accumulated since
            assert fabric.member_tick("edge1", 2) is True
            assert fabric._ring[-1].packets == len(trace)
        finally:
            fabric.stop()


class TestWallClockSmoke:
    def test_start_requires_wall_mode(self):
        reset_task_ids()
        fabric = FabricService(
            FabricTopology.preset(2),
            epoch_packets=1000,
            controller_params=PARAMS,
        )
        try:
            with pytest.raises(ValueError, match="epoch_wall_ms"):
                fabric.start()
        finally:
            fabric.stop()

    def test_tickers_seal_and_conserve_packets(self):
        reset_task_ids()
        fabric = FabricService(
            FabricTopology.preset(2),
            epoch_wall_ms=60.0,
            controller_params=PARAMS,
        )
        handle = fabric.deploy(freq_task())
        trace = fabric_trace(num_packets=4000, seed=73, blocks=4)
        try:
            fabric.start()
            with pytest.raises(RuntimeError, match="already running"):
                fabric.start()
            # stream the trace in chunks across a few tick intervals
            step = max(1, len(trace) // 8)
            remaining = trace
            while len(remaining):
                window, remaining = _split_trace(remaining, step)
                fabric.ingest(window)
                time.sleep(0.03)
            deadline = time.monotonic() + 5.0
            while (
                fabric.stats()["sealed_epochs"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            fabric.stop(seal_tail=True)
            stats = fabric.stats()
            assert stats["sealed_epochs"] >= 1
            assert stats["packets_total"] == len(trace)
            # every packet sits in exactly one sealed epoch
            assert sum(e.packets for e in fabric._ring) == len(trace)
            assert stats["epoch_fill"] == 0
            # and the query plane answers off the sealed fabric epochs
            flow = next(iter(trace.flow_sizes(handle.task.key)))
            resolve(FrequencyQuery(handle, flow), fabric._ring[-1])
        finally:
            fabric.stop()
