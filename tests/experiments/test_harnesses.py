"""Tests for the experiment harness plumbing and the fast harnesses.

The slow accuracy sweeps (Fig. 12b, 14a-g) are exercised by
``pytest benchmarks/``; here we test the shared helpers plus every harness
cheap enough for the unit suite.
"""

import pytest

from repro.experiments import (
    appendix_b_collisions,
    fig02_footprint,
    fig08_stage_usage,
    fig11_address_translation,
    fig12a_forwarding,
    fig13_resources,
)
from repro.experiments.common import (
    BUCKET_BYTES,
    buckets_for_bytes,
    evaluation_trace,
    format_table,
    memory_bytes,
    pow2_at_least,
)


class TestCommonHelpers:
    def test_pow2_at_least(self):
        assert pow2_at_least(1) == 64  # register floor
        assert pow2_at_least(64) == 64
        assert pow2_at_least(65) == 128
        assert pow2_at_least(4096) == 4096

    def test_buckets_for_bytes_round_trip(self):
        buckets = buckets_for_bytes(64 * 1024, rows=3)
        # Nearest power of two to (64 KB / 3 rows / 4 B) ~ 5461 -> 4096.
        assert buckets == 4096
        assert memory_bytes(buckets, rows=3) == buckets * 3 * BUCKET_BYTES

    def test_buckets_floor(self):
        assert buckets_for_bytes(1) == 64

    def test_evaluation_trace_cached_and_deterministic(self):
        a = evaluation_trace(True)
        b = evaluation_trace(True)
        assert a is b  # lru_cache

    def test_format_table_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["bbbb", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])


class TestFastHarnesses:
    def test_fig02(self):
        result = fig02_footprint.run()
        assert "Sum" in result["utilization"]
        assert "Figure 2" in fig02_footprint.format_result(result)

    def test_fig11(self):
        result = fig11_address_translation.run()
        assert result["tcam_usage"][32] < 0.15
        assert "PHV bits" in fig11_address_translation.format_result(result)

    def test_fig12a_deterministic(self):
        a = fig12a_forwarding.run(seed=1)
        b = fig12a_forwarding.run(seed=1)
        assert a["summary"] == b["summary"]

    def test_fig12a_event_schedule(self):
        result = fig12a_forwarding.run()
        assert len(result["events"]) == 9
        assert [e["time_s"] for e in result["events"]] == [
            10.0 * i for i in range(1, 10)
        ]

    def test_fig13(self):
        result = fig13_resources.run()
        assert result["fig13b"]["series"][12]["hash"] == pytest.approx(0.75)
        text = fig13_resources.format_result(result)
        assert "Figure 13a" in text and "Figure 13c" in text

    def test_fig08_matches_paper_exactly(self):
        """The Figure 8 per-stage percentages emerge from the calibrated
        capacities with zero error."""
        result = fig08_stage_usage.run()
        for stage, shares in result["paper"].items():
            for resource, fraction in shares.items():
                assert result["measured"][stage][resource] == pytest.approx(
                    fraction
                ), (stage, resource)

    def test_appendix_b(self):
        result = appendix_b_collisions.run()
        for row in result["rows"]:
            assert abs(row["measured"] - row["analytic"]) < max(
                0.5 * row["analytic"], 0.005
            )
