"""Unit tests for the synthetic trace generators."""

import numpy as np
import pytest

from repro.traffic import (
    KEY_5TUPLE,
    KEY_DST_IP,
    KEY_IP_PAIR,
    KEY_SRC_IP,
    ddos_trace,
    portscan_trace,
    superspreader_trace,
    uniform_trace,
    zipf_trace,
)
from repro.traffic.flows import FlowKeyDef


class TestZipfTrace:
    def test_deterministic_given_seed(self):
        a = zipf_trace(num_flows=100, num_packets=1000, seed=5)
        b = zipf_trace(num_flows=100, num_packets=1000, seed=5)
        assert np.array_equal(a.columns["src_ip"], b.columns["src_ip"])

    def test_seed_changes_trace(self):
        a = zipf_trace(num_flows=100, num_packets=1000, seed=5)
        b = zipf_trace(num_flows=100, num_packets=1000, seed=6)
        assert not np.array_equal(a.columns["src_ip"], b.columns["src_ip"])

    def test_flow_count_exact(self):
        trace = zipf_trace(num_flows=500, num_packets=5000, seed=1)
        assert trace.cardinality(KEY_5TUPLE) == 500

    def test_packet_count_close_to_request(self):
        trace = zipf_trace(num_flows=500, num_packets=5000, seed=1)
        assert 4000 <= len(trace) <= 6500

    def test_heavy_tail(self):
        """With alpha > 1, the largest flow dominates the median flow."""
        trace = zipf_trace(num_flows=1000, num_packets=50_000, alpha=1.2, seed=2)
        sizes = sorted(trace.flow_sizes(KEY_5TUPLE).values())
        assert sizes[-1] > 100 * sizes[len(sizes) // 2]

    def test_timestamps_sorted_and_bounded(self):
        trace = zipf_trace(num_flows=50, num_packets=500, duration_us=10_000, seed=3)
        ts = trace.columns["timestamp"]
        assert np.all(np.diff(ts) >= 0)
        assert ts.max() < 10_000

    def test_packet_sizes_realistic(self):
        trace = zipf_trace(num_flows=50, num_packets=500, seed=3)
        sizes = trace.columns["pkt_bytes"]
        assert sizes.min() >= 64 and sizes.max() <= 1500


class TestUniformTrace:
    def test_all_flows_equal_size(self):
        trace = uniform_trace(num_flows=100, packets_per_flow=7, seed=4)
        sizes = set(trace.flow_sizes(KEY_5TUPLE).values())
        assert sizes == {7}


class TestScenarioTraces:
    def test_ddos_victims_have_many_sources(self):
        trace = ddos_trace(
            num_victims=5,
            sources_per_victim=300,
            background_flows=500,
            background_packets=2000,
            seed=8,
        )
        counts = trace.distinct_counts(KEY_DST_IP, KEY_SRC_IP)
        victims = [k for k, v in counts.items() if v >= 290]
        assert len(victims) == 5

    def test_superspreaders_contact_many_destinations(self):
        trace = superspreader_trace(
            num_spreaders=3,
            contacts_per_spreader=400,
            background_flows=300,
            background_packets=1000,
            seed=9,
        )
        counts = trace.distinct_counts(KEY_SRC_IP, KEY_DST_IP)
        spreaders = [k for k, v in counts.items() if v >= 390]
        assert len(spreaders) == 3

    def test_portscan_pairs_touch_many_ports(self):
        trace = portscan_trace(
            num_scanners=2,
            ports_per_scan=250,
            background_flows=300,
            background_packets=1000,
            seed=10,
        )
        counts = trace.distinct_counts(KEY_IP_PAIR, FlowKeyDef.of("dst_port"))
        scanners = [k for k, v in counts.items() if v >= 250]
        assert len(scanners) == 2

    def test_scenarios_time_sorted(self):
        trace = ddos_trace(
            num_victims=2,
            sources_per_victim=50,
            background_flows=100,
            background_packets=300,
            seed=11,
        )
        assert np.all(np.diff(trace.columns["timestamp"]) >= 0)
