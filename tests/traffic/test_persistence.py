"""Unit tests for trace save/load."""

import numpy as np

from repro.traffic import Trace, zipf_trace


class TestTracePersistence:
    def test_round_trip(self, tmp_path):
        trace = zipf_trace(num_flows=200, num_packets=2000, seed=4)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        for name, column in trace.columns.items():
            assert np.array_equal(loaded.columns[name], column)

    def test_ground_truth_survives(self, tmp_path):
        from repro.traffic import KEY_SRC_IP

        trace = zipf_trace(num_flows=100, num_packets=1000, seed=5)
        path = tmp_path / "t.npz"
        trace.save(path)
        assert Trace.load(path).flow_sizes(KEY_SRC_IP) == trace.flow_sizes(KEY_SRC_IP)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.npz"
        Trace.empty().save(path)
        assert len(Trace.load(path)) == 0
