"""Unit tests for the egress-queue model."""

import numpy as np
import pytest

from repro.traffic import Trace, zipf_trace
from repro.traffic.flows import KEY_SRC_IP
from repro.traffic.queueing import QueueModel, apply_queue_model


class TestQueueModel:
    def test_idle_queue_stays_empty(self):
        model = QueueModel(drain_bytes_per_us=1000.0)
        # Packets far apart: every arrival sees an empty queue.
        ts = np.array([0, 10_000, 20_000], dtype=np.int64)
        sizes = np.array([100, 100, 100], dtype=np.int64)
        lengths, delays = model.simulate(ts, sizes)
        assert (lengths == 0).all() and (delays == 0).all()

    def test_burst_builds_backlog(self):
        model = QueueModel(drain_bytes_per_us=1.0)
        ts = np.zeros(5, dtype=np.int64)  # simultaneous burst
        sizes = np.full(5, 100, dtype=np.int64)
        lengths, _ = model.simulate(ts, sizes)
        # Packet i observes i * 100 bytes of backlog.
        assert list(lengths) == [0, 100, 200, 300, 400]

    def test_delay_is_backlog_over_rate(self):
        model = QueueModel(drain_bytes_per_us=2.0)
        ts = np.zeros(3, dtype=np.int64)
        sizes = np.full(3, 100, dtype=np.int64)
        lengths, delays = model.simulate(ts, sizes)
        for length, delay in zip(lengths, delays):
            assert delay == length // 2

    def test_queue_drains_between_bursts(self):
        model = QueueModel(drain_bytes_per_us=1.0)
        ts = np.array([0, 0, 500], dtype=np.int64)
        sizes = np.array([100, 100, 100], dtype=np.int64)
        lengths, _ = model.simulate(ts, sizes)
        # 200 bytes backlog drains fully within 500 us at 1 B/us.
        assert lengths[2] == 0

    def test_capacity_caps_backlog(self):
        model = QueueModel(drain_bytes_per_us=0.001, capacity_bytes=250)
        ts = np.zeros(10, dtype=np.int64)
        sizes = np.full(10, 100, dtype=np.int64)
        lengths, _ = model.simulate(ts, sizes)
        assert lengths.max() <= 250

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            QueueModel(drain_bytes_per_us=0).simulate(
                np.array([0]), np.array([1])
            )


class TestApplyQueueModel:
    def test_replaces_queue_columns_only(self):
        trace = zipf_trace(num_flows=200, num_packets=2000, seed=6)
        modeled = apply_queue_model(trace, QueueModel(drain_bytes_per_us=50.0))
        assert np.array_equal(modeled.columns["src_ip"], trace.columns["src_ip"])
        assert not np.array_equal(
            modeled.columns["queue_length"], trace.columns["queue_length"]
        )

    def test_congestion_task_sees_modeled_queues(self):
        """End-to-end: a Max(queue_length) task measures the queue model."""
        from repro.core.controller import FlyMonController
        from repro.core.task import AttributeSpec, MeasurementTask

        trace = apply_queue_model(
            zipf_trace(num_flows=300, num_packets=5000, seed=7),
            QueueModel(drain_bytes_per_us=20.0),
        )
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.maximum("queue_length"),
                memory=8192,
                depth=3,
                algorithm="sumax_max",
            )
        )
        controller.process_trace(trace)
        truth = trace.max_values(KEY_SRC_IP, "queue_length")
        for flow, value in list(truth.items())[:50]:
            assert handle.algorithm.query(flow) >= value

    def test_unsorted_trace_rejected(self):
        trace = zipf_trace(num_flows=10, num_packets=100, seed=8)
        shuffled = trace.select(np.random.default_rng(0).permutation(len(trace)))
        with pytest.raises(ValueError):
            apply_queue_model(shuffled)
