"""Unit tests for flow-key definitions and exact ground truth."""

import numpy as np
import pytest

from repro.traffic.flows import (
    FlowKeyDef,
    KEY_5TUPLE,
    KEY_DST_IP,
    KEY_IP_PAIR,
    KEY_SRC_IP,
    empirical_entropy,
    flow_size_distribution,
)
from repro.traffic.packet import Packet
from repro.traffic.trace import Trace


def tiny_trace():
    packets = [
        Packet(src_ip=1, dst_ip=10, src_port=5, dst_port=80, timestamp=0),
        Packet(src_ip=1, dst_ip=10, src_port=5, dst_port=80, timestamp=10),
        Packet(src_ip=1, dst_ip=11, src_port=5, dst_port=80, timestamp=25),
        Packet(src_ip=2, dst_ip=10, src_port=6, dst_port=80, timestamp=30),
    ]
    return Trace.from_packets(packets)


class TestFlowKeyDef:
    def test_of_full_field(self):
        assert KEY_SRC_IP.total_bits == 32
        assert KEY_SRC_IP.describe() == "src_ip"

    def test_of_prefix(self):
        key = FlowKeyDef.of(("src_ip", 24))
        assert key.total_bits == 24
        assert key.describe() == "src_ip/24"

    def test_extract_prefix_drops_host_bits(self):
        key = FlowKeyDef.of(("src_ip", 24))
        a = key.extract({"src_ip": 0x0A000001})
        b = key.extract({"src_ip": 0x0A0000FF})
        assert a == b == (0x0A0000,)

    def test_extract_matches_extract_columns(self):
        trace = tiny_trace()
        rows = KEY_5TUPLE.extract_columns(trace.columns)
        for i, fields in enumerate(trace.iter_fields()):
            assert tuple(rows[i]) == KEY_5TUPLE.extract(fields)

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            FlowKeyDef.of("no_such_field")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            FlowKeyDef.of()

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            FlowKeyDef.of(("src_ip", 40))

    def test_mask_spec(self):
        assert KEY_IP_PAIR.mask_spec() == {"src_ip": 32, "dst_ip": 32}


class TestGroundTruth:
    def test_flow_sizes(self):
        sizes = tiny_trace().flow_sizes(KEY_SRC_IP)
        assert sizes == {(1,): 3, (2,): 1}

    def test_flow_sizes_by_bytes(self):
        trace = tiny_trace()
        sizes = trace.flow_sizes(KEY_SRC_IP, by_bytes=True)
        assert sizes[(1,)] == 3 * 64 and sizes[(2,)] == 64

    def test_distinct_counts(self):
        counts = tiny_trace().distinct_counts(KEY_SRC_IP, KEY_DST_IP)
        assert counts == {(1,): 2, (2,): 1}

    def test_cardinality(self):
        assert tiny_trace().cardinality(KEY_5TUPLE) == 3
        assert tiny_trace().cardinality(KEY_SRC_IP) == 2

    def test_heavy_hitters(self):
        assert tiny_trace().heavy_hitters(KEY_SRC_IP, 2) == {(1,)}

    def test_max_values(self):
        trace = Trace.from_packets(
            [
                Packet(1, 2, 3, 4, queue_length=10),
                Packet(1, 2, 3, 4, queue_length=30),
                Packet(9, 2, 3, 4, queue_length=20),
            ]
        )
        assert trace.max_values(KEY_SRC_IP, "queue_length") == {(1,): 30, (9,): 20}

    def test_max_interarrival(self):
        gaps = tiny_trace().max_interarrival(KEY_SRC_IP)
        # Flow 1 arrives at 0, 10, 25 -> max gap 15; flow 2 has one packet.
        assert gaps == {(1,): 15, (2,): 0}

    def test_entropy_uniform_flows(self):
        trace = Trace.from_packets(
            [Packet(i, 0, 0, 0) for i in range(4)]
        )
        assert trace.entropy(KEY_SRC_IP) == pytest.approx(np.log(4))

    def test_entropy_single_flow_is_zero(self):
        trace = Trace.from_packets([Packet(1, 0, 0, 0)] * 5)
        assert trace.entropy(KEY_SRC_IP) == 0.0

    def test_flow_size_distribution(self):
        dist = flow_size_distribution([1, 1, 3, 3, 3, 7])
        assert dist == {1: 2, 3: 3, 7: 1}

    def test_empirical_entropy_empty(self):
        assert empirical_entropy([]) == 0.0
