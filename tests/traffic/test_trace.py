"""Unit tests for the columnar trace container."""

import numpy as np
import pytest

from repro.traffic.packet import PACKET_FIELDS, Packet, format_ip, ip
from repro.traffic.trace import Trace


class TestPacketHelpers:
    def test_ip_round_trip(self):
        value = ip(10, 1, 2, 3)
        assert value == 0x0A010203
        assert format_ip(value) == "10.1.2.3"

    def test_ip_rejects_bad_octet(self):
        with pytest.raises(ValueError):
            ip(256, 0, 0, 0)

    def test_fields_covers_all_columns(self):
        assert set(Packet(1, 2, 3, 4).fields()) == set(PACKET_FIELDS)

    def test_five_tuple(self):
        assert Packet(1, 2, 3, 4, 17).five_tuple() == (1, 2, 3, 4, 17)


class TestTrace:
    def test_from_packets_round_trip(self):
        packets = [Packet(1, 2, 3, 4, timestamp=7), Packet(5, 6, 7, 8, timestamp=9)]
        trace = Trace.from_packets(packets)
        assert len(trace) == 2
        assert trace.packet(1).src_ip == 5
        assert list(trace.iter_packets())[0].timestamp == 7

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError):
            Trace({"src_ip": np.array([1])})

    def test_length_mismatch_rejected(self):
        cols = {f: np.array([1]) for f in PACKET_FIELDS}
        cols["dst_ip"] = np.array([1, 2])
        with pytest.raises(ValueError):
            Trace(cols)

    def test_empty(self):
        trace = Trace.empty()
        assert len(trace) == 0 and trace.duration_us == 0

    def test_concatenate_and_sort(self):
        a = Trace.from_packets([Packet(1, 0, 0, 0, timestamp=10)])
        b = Trace.from_packets([Packet(2, 0, 0, 0, timestamp=5)])
        merged = Trace.concatenate([a, b]).sorted_by_time()
        assert [p.src_ip for p in merged.iter_packets()] == [2, 1]

    def test_split_epochs_partitions_all_packets(self):
        packets = [Packet(i, 0, 0, 0, timestamp=i * 10) for i in range(20)]
        trace = Trace.from_packets(packets)
        epochs = trace.split_epochs(4)
        assert len(epochs) == 4
        assert sum(len(e) for e in epochs) == 20
        # Time ordering across epochs is preserved.
        boundaries = [e.columns["timestamp"] for e in epochs if len(e)]
        for earlier, later in zip(boundaries, boundaries[1:]):
            assert earlier.max() < later.min()

    def test_split_epochs_empty_trace(self):
        assert all(len(e) == 0 for e in Trace.empty().split_epochs(3))

    def test_split_epochs_invalid(self):
        with pytest.raises(ValueError):
            Trace.empty().split_epochs(0)

    def test_iter_fields_values_are_python_ints(self):
        trace = Trace.from_packets([Packet(1, 2, 3, 4)])
        fields = next(iter(trace))
        assert all(isinstance(v, int) for v in fields.values())

    def test_filter_mask(self):
        trace = Trace.from_packets(
            [Packet(1, 0, 0, 0), Packet(2, 0, 0, 0), Packet(3, 0, 0, 0)]
        )
        picked = trace.filter_mask(trace.columns["src_ip"] > 1)
        assert len(picked) == 2
