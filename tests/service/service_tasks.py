"""Task factories shared by the service test suite."""

from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP


def freq_task(memory=2048, depth=3, threshold=None, algorithm="cms"):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=depth,
        algorithm=algorithm,
        threshold=threshold,
    )


def hll_task(memory=1024):
    return MeasurementTask(
        key=KEY_DST_IP,
        attribute=AttributeSpec.distinct(KEY_SRC_IP),
        memory=memory,
        depth=1,
        algorithm="hll",
    )


def mrac_task(memory=2048):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=1,
        algorithm="mrac",
    )


def bloom_task(memory=4096):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.existence(),
        memory=memory,
        depth=3,
        algorithm="bloom",
    )


def interarrival_task(memory=2048):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.maximum("packet_interval"),
        memory=memory,
        depth=2,
        algorithm="max_interarrival",
    )
