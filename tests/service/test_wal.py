"""WAL crash consistency: delta records, torn tails, kill -9 recovery.

The in-process tests pin recovery parity directly: a WAL replayed through
:func:`recover_service_artifact` must reproduce the same artifact a clean
:func:`service_checkpoint` would have written -- including across
watcher-triggered resizes, whose remove+add op records recovery replays
to land the recovered controller at the exact same placement.

The subprocess test is the acceptance criterion: ``repro serve --wal``
SIGKILL'd mid-stream, then ``repro recover``, must yield sealed epochs
bit-identical to the same run left uninterrupted.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import (
    CardinalityQuery,
    FrequencyQuery,
    MeasurementService,
    ServiceWal,
    TaskRef,
    WalError,
    Watcher,
    fill_factor_metric,
    recover_service,
    recover_service_artifact,
    resize_action,
    service_checkpoint,
)
from repro.service.wal import read_wal_records
from repro.traffic import zipf_trace

from service_tasks import freq_task, hll_task

REPO = Path(__file__).resolve().parents[2]


def _strip_timing(artifact):
    """Drop wall-clock-dependent fields before bit-identity comparison."""
    epochs = []
    for entry in artifact["epochs"]:
        entry = dict(entry)
        entry.pop("seal_ms", None)
        epochs.append(entry)
    return epochs


class TestInProcessParity:
    def _run(self, controller, wal_path, with_watcher=False):
        cms = TaskRef(controller.add_task(freq_task(threshold=80)))
        hll = TaskRef(controller.add_task(hll_task()))
        service = MeasurementService(controller, epoch_packets=2500, retain=8)
        service.register_series("cardinality", CardinalityQuery(hll))
        if with_watcher:
            service.add_watcher(
                Watcher(
                    "grow",
                    fill_factor_metric(cms),
                    above=0.0,
                    action=resize_action(cms, max_memory=1 << 14),
                    cooldown_epochs=2,
                )
            )
        wal = ServiceWal(str(wal_path)).attach(service)
        for seed in (70, 71, 72):
            service.ingest(zipf_trace(num_flows=400, num_packets=5000, seed=seed))
        wal.close()
        return service, cms, hll

    def test_recovered_artifact_matches_checkpoint(self, controller, tmp_path):
        wal_path = tmp_path / "svc.wal"
        service, cms, hll = self._run(controller, wal_path)
        reference = service_checkpoint(service)
        recovered = recover_service_artifact(str(wal_path))
        assert _strip_timing(recovered) == _strip_timing(reference)
        assert recovered["rotation"] == reference["rotation"]
        assert recovered["series"] == reference["series"]
        assert [t["placement"] for t in recovered["tasks"]] == [
            t["placement"] for t in reference["tasks"]
        ]
        assert recovered["stats"]["recovered_from_wal"] is True

    def test_recovered_queries_match_live_answers(self, controller, tmp_path):
        wal_path = tmp_path / "svc.wal"
        service, cms, hll = self._run(controller, wal_path)
        restored = recover_service(str(wal_path))
        rec_cms, rec_hll = restored.tasks
        for sealed in service.epochs:
            rec = restored.epoch(sealed.index)
            from repro.service.queries import resolve

            assert restored.query(CardinalityQuery(rec_hll), rec) == resolve(
                CardinalityQuery(hll), sealed
            )
            for flow in ((1,), (42,), (1000,)):
                assert restored.query(
                    FrequencyQuery(rec_cms, flow), rec
                ) == resolve(FrequencyQuery(cms, flow), sealed)

    def test_parity_across_watcher_resize(self, controller, tmp_path):
        # The resize's remove+add land in the WAL as op records; recovery
        # replays them, so post-resize epochs re-key to the new deployment
        # and pre-resize epochs drop the removed one -- exactly like a
        # clean checkpoint.
        wal_path = tmp_path / "svc.wal"
        service, cms, hll = self._run(controller, wal_path, with_watcher=True)
        assert any(
            e.outcome == "ok" for e in service.watcher_log
        ), "the watcher never resized; the scenario is vacuous"
        reference = service_checkpoint(service)
        recovered = recover_service_artifact(str(wal_path))
        assert _strip_timing(recovered) == _strip_timing(reference)
        assert recovered["watcher_log"] == reference["watcher_log"]

    def test_torn_tail_is_tolerated(self, controller, tmp_path):
        wal_path = tmp_path / "svc.wal"
        self._run(controller, wal_path)
        intact = recover_service_artifact(str(wal_path))
        with open(wal_path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "seal", "index": 99, "pack')  # the crash
        torn = recover_service_artifact(str(wal_path))
        assert torn["epochs"] == intact["epochs"]

    def test_midlog_corruption_raises(self, controller, tmp_path):
        wal_path = tmp_path / "svc.wal"
        self._run(controller, wal_path)
        lines = wal_path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # truncate a middle record
        wal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalError, match="mid-log"):
            read_wal_records(str(wal_path))

    def test_empty_and_baseless_wals_are_rejected(self, controller, tmp_path):
        empty = tmp_path / "empty.wal"
        empty.write_text("")
        with pytest.raises(WalError, match="empty"):
            recover_service_artifact(str(empty))
        baseless = tmp_path / "baseless.wal"
        baseless.write_text('{"type": "seal", "index": 0}\n')
        with pytest.raises(WalError, match="not base"):
            recover_service_artifact(str(baseless))

    def test_attach_requires_complete_history(self, controller, tmp_path):
        controller.add_task(freq_task())
        controller._history_complete = False  # caller-owned transaction ran
        service = MeasurementService(controller, epoch_packets=100)
        with pytest.raises(WalError, match="incomplete"):
            ServiceWal(str(tmp_path / "svc.wal")).attach(service)

    def test_double_attach_is_rejected(self, controller, tmp_path):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=100)
        wal = ServiceWal(str(tmp_path / "a.wal")).attach(service)
        with pytest.raises(WalError, match="already"):
            ServiceWal(str(tmp_path / "b.wal")).attach(service)
        wal.close()


SERVE_ARGS = [
    "serve",
    "--generator", "zipf",
    "--packets", "120000",
    "--flows", "2000",
    "--seed", "77",
    "--epoch-size", "3000",
    "--chunk", "3000",
    "--retain", "64",
    "--tasks", "hh,card",
    "--threshold", "80",
    "--watch-fill", "0.0",
]


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    return env


class TestKillNineRecovery:
    def test_sigkilled_serve_recovers_identical_epochs(self, tmp_path):
        # Reference: the same run, uninterrupted (fresh process, so task-id
        # counters -- which appear in watcher action strings -- match).
        ref_ckpt = tmp_path / "ref.json"
        subprocess.run(
            [sys.executable, "-m", "repro.cli", *SERVE_ARGS,
             "--checkpoint", str(ref_ckpt)],
            env=_cli_env(), cwd=str(tmp_path), check=True,
            stdout=subprocess.DEVNULL, timeout=300,
        )
        reference = json.loads(ref_ckpt.read_text())

        # Crash run: SIGKILL once a few epoch lines have hit stdout.
        wal_path = tmp_path / "crash.wal"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *SERVE_ARGS,
             "--wal", str(wal_path)],
            env=_cli_env(), cwd=str(tmp_path),
            stdout=subprocess.PIPE, text=True,
        )
        sealed_lines = 0
        try:
            deadline = time.monotonic() + 120
            while sealed_lines < 5:
                assert time.monotonic() < deadline, "serve never sealed"
                line = proc.stdout.readline()
                assert line, "serve exited before it could be killed"
                if line.startswith("epoch"):
                    sealed_lines += 1
        finally:
            proc.kill()  # SIGKILL: no atexit, no flush, no cleanup
            proc.wait(timeout=60)
        assert proc.returncode == -signal.SIGKILL

        recovered = recover_service_artifact(str(wal_path))
        epochs = recovered["epochs"]
        # Every epoch whose seal record hit the log is recovered; at least
        # the ones whose stdout line we saw must be there.
        assert len(epochs) >= sealed_lines
        by_index = {e["index"]: e for e in _strip_timing(reference)}
        for entry in _strip_timing(recovered):
            assert entry == by_index[entry["index"]]
        # Placement parity: recovered deployments sit exactly where the
        # reference run's do.
        ref_tasks = json.loads(ref_ckpt.read_text())["tasks"]
        assert [t["placement"] for t in recovered["tasks"]] == [
            t["placement"] for t in ref_tasks
        ]
