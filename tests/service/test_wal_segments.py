"""WAL segmentation and compaction: bounded size, O(retain) recovery.

The tentpole guarantee: an hours-scale stream (hundreds of epochs) through
a segmented WAL keeps the on-disk footprint bounded by the roll threshold
(old segments are compacted into the new base and pruned) and recovery
reads only the newest intact segment -- cost proportional to ``retain``,
not to stream length.  A torn base (the mid-roll crash signature) falls
back exactly one segment.  The attach guard and the streaming record
reader (both PR 9 satellite bugfixes) get regression coverage here too.
"""

import json
import os
import tracemalloc

import pytest

from repro.service import (
    CardinalityQuery,
    MeasurementService,
    ServiceWal,
    WalError,
    iter_wal_records,
    recover_service_artifact,
    service_checkpoint,
    wal_segments,
)
from repro.service.wal import read_wal_records
from repro.traffic import zipf_trace

from service_tasks import freq_task, hll_task


def _strip_timing(artifact):
    epochs = []
    for entry in artifact["epochs"]:
        entry = dict(entry)
        entry.pop("seal_ms", None)
        epochs.append(entry)
    return epochs


def _dir_bytes(path):
    return sum(
        os.path.getsize(os.path.join(path, name)) for name in os.listdir(path)
    )


class TestSegmentedParity:
    def test_segmented_recovery_matches_checkpoint(self, controller, tmp_path):
        cms = controller.add_task(freq_task(threshold=80))
        hll = controller.add_task(hll_task())
        service = MeasurementService(controller, epoch_packets=2500, retain=8)
        service.register_series("cardinality", CardinalityQuery(hll))
        wal = ServiceWal(str(tmp_path / "seg"), segment_seals=3).attach(service)
        for seed in (70, 71, 72):
            service.ingest(zipf_trace(num_flows=400, num_packets=5000, seed=seed))
        wal.close()
        assert wal.rolls >= 1, "the roll threshold never tripped; vacuous"

        reference = service_checkpoint(service)
        recovered = recover_service_artifact(str(tmp_path / "seg"))
        assert _strip_timing(recovered) == _strip_timing(reference)
        assert recovered["rotation"] == reference["rotation"]
        assert recovered["stats"]["recovered_from_wal"] is True
        assert recovered["stats"]["wal_segments"] >= 1

    def test_roll_prunes_to_keep_segments(self, controller, tmp_path):
        controller.add_task(freq_task(memory=256, depth=1))
        service = MeasurementService(controller, epoch_packets=200, retain=4)
        wal = ServiceWal(str(tmp_path / "seg"), segment_seals=2).attach(service)
        service.ingest(zipf_trace(num_flows=50, num_packets=4000, seed=1))
        wal.close()
        segments = wal_segments(str(tmp_path / "seg"))
        assert len(segments) <= wal.keep_segments
        # The newest segment's base embeds the retained epochs (compaction).
        records = read_wal_records(segments[-1][1])
        assert records[0]["type"] == "base"
        assert len(records[0].get("epochs", [])) <= service.retain


class TestHoursScaleBounded:
    def test_long_stream_bounded_dir_and_o_retain_recovery(
        self, controller, tmp_path
    ):
        # >= 500 epochs with a small retain: the acceptance criterion.
        controller.add_task(freq_task(memory=256, depth=1, threshold=200))
        service = MeasurementService(controller, epoch_packets=40, retain=4)
        wal = ServiceWal(str(tmp_path / "seg"), segment_seals=8).attach(service)
        epochs_sealed = 0
        for seed in range(10):
            epochs_sealed += len(
                service.ingest(
                    zipf_trace(num_flows=60, num_packets=2200, seed=seed)
                )
            )
        wal.close()
        assert epochs_sealed >= 500
        assert wal.rolls >= 50

        # Bounded footprint: at most keep_segments segments exist, each no
        # bigger than one base (retain epochs) plus one roll window of
        # seals -- independent of the 500-epoch stream length.
        segments = wal_segments(str(tmp_path / "seg"))
        assert len(segments) <= wal.keep_segments
        record_counts = [len(read_wal_records(p)) for _, p in segments]
        # Per segment: 1 base + segment_seals seals + a roll's slack.
        assert max(record_counts) <= 1 + 8 + 2

        # O(retain) recovery: the replay touches one segment's records,
        # not the ~500 seal records the stream produced.
        recovered = recover_service_artifact(str(tmp_path / "seg"))
        assert recovered["stats"]["wal_records"] <= 1 + 8 + 2
        assert recovered["stats"]["epochs_recovered"] == service.retain
        reference = service_checkpoint(service)
        assert _strip_timing(recovered) == _strip_timing(reference)

    def test_segmented_dir_smaller_than_single_file(self, tmp_path):
        # Same stream, both layouts: the single file grows with the stream,
        # the directory stays bounded by the compaction threshold.
        from repro.core.controller import FlyMonController

        sizes = {}
        for mode in ("single", "segmented"):
            controller = FlyMonController(num_groups=3)
            controller.add_task(freq_task(memory=256, depth=1))
            service = MeasurementService(controller, epoch_packets=50, retain=4)
            if mode == "single":
                wal = ServiceWal(str(tmp_path / "flat.wal")).attach(service)
            else:
                wal = ServiceWal(
                    str(tmp_path / "seg"), segment_seals=8
                ).attach(service)
            for seed in range(4):
                service.ingest(
                    zipf_trace(num_flows=60, num_packets=2000, seed=seed)
                )
            wal.close()
            sizes[mode] = (
                os.path.getsize(tmp_path / "flat.wal")
                if mode == "single"
                else _dir_bytes(str(tmp_path / "seg"))
            )
        assert sizes["segmented"] * 4 < sizes["single"]


class TestTornBaseFallback:
    def _build(self, controller, tmp_path):
        controller.add_task(freq_task(memory=512, depth=2, threshold=80))
        service = MeasurementService(controller, epoch_packets=500, retain=4)
        wal = ServiceWal(str(tmp_path / "seg"), segment_seals=3).attach(service)
        service.ingest(zipf_trace(num_flows=100, num_packets=5000, seed=9))
        wal.close()
        segments = wal_segments(str(tmp_path / "seg"))
        assert len(segments) >= 2
        return service, segments

    def test_torn_newest_base_falls_back_one_segment(self, controller, tmp_path):
        service, segments = self._build(controller, tmp_path)
        intact = recover_service_artifact(str(tmp_path / "seg"))
        newest = segments[-1][1]
        text = open(newest, encoding="utf-8").read().splitlines()[0]
        with open(newest, "w", encoding="utf-8") as fh:
            fh.write(text[: len(text) // 2])  # the roll's torn base write
        fallback = recover_service_artifact(str(tmp_path / "seg"))
        assert fallback["stats"]["wal_segment"] == segments[-2][0]
        # The fallback segment holds everything up to the interrupted roll:
        # a strict prefix of the intact recovery's epochs.
        intact_by_index = {e["index"]: e for e in _strip_timing(intact)}
        recovered = _strip_timing(fallback)
        assert recovered, "fallback recovered nothing"
        for entry in recovered:
            assert entry == intact_by_index[entry["index"]]

    def test_empty_newest_segment_falls_back(self, controller, tmp_path):
        service, segments = self._build(controller, tmp_path)
        empty = os.path.join(
            os.path.dirname(segments[-1][1]),
            f"wal-{segments[-1][0] + 1:06d}.jsonl",
        )
        open(empty, "w").close()  # crash after create, before the base
        recovered = recover_service_artifact(str(tmp_path / "seg"))
        assert recovered["stats"]["wal_segment"] == segments[-1][0]

    def test_all_segments_baseless_raises(self, tmp_path):
        os.makedirs(tmp_path / "seg")
        open(tmp_path / "seg" / "wal-000001.jsonl", "w").close()
        with pytest.raises(WalError, match="intact base"):
            recover_service_artifact(str(tmp_path / "seg"))

    def test_empty_directory_raises(self, tmp_path):
        os.makedirs(tmp_path / "seg")
        with pytest.raises(WalError, match="empty WAL directory"):
            recover_service_artifact(str(tmp_path / "seg"))


class TestAttachGuard:
    """Satellite regression: attaching to a non-empty log must be refused
    (a second base mid-log makes recovery replay the wrong history)."""

    def _service(self, controller):
        controller.add_task(freq_task())
        return MeasurementService(controller, epoch_packets=1000, retain=4)

    def test_single_file_refused_without_resume(self, controller, tmp_path):
        path = tmp_path / "svc.wal"
        service = self._service(controller)
        wal = ServiceWal(str(path)).attach(service)
        service.ingest(zipf_trace(num_flows=50, num_packets=2000, seed=3))
        wal.close()
        with pytest.raises(WalError, match="already contains records"):
            ServiceWal(str(path)).attach(service)
        # The refused attach must leave the service re-attachable.
        assert service._wal is None

    def test_single_file_resume_rotates_aside(self, controller, tmp_path):
        path = tmp_path / "svc.wal"
        service = self._service(controller)
        wal = ServiceWal(str(path)).attach(service)
        service.ingest(zipf_trace(num_flows=50, num_packets=2000, seed=3))
        wal.close()
        first_records = read_wal_records(str(path))

        wal2 = ServiceWal(str(path), resume=True).attach(service)
        service.ingest(zipf_trace(num_flows=50, num_packets=2000, seed=4))
        wal2.close()
        # Exactly one base per log: the old log moved to .prev whole.
        records = read_wal_records(str(path))
        assert sum(1 for r in records if r["type"] == "base") == 1
        prev = read_wal_records(str(path) + ".prev")
        assert prev == first_records
        # And the resumed log recovers on its own (the resume base embeds
        # the epochs sealed before it).
        recovered = recover_service_artifact(str(path))
        reference = service_checkpoint(service)
        assert _strip_timing(recovered) == _strip_timing(reference)

    def test_segment_dir_refused_without_resume(self, controller, tmp_path):
        path = tmp_path / "seg"
        service = self._service(controller)
        wal = ServiceWal(str(path), segment_seals=2).attach(service)
        service.ingest(zipf_trace(num_flows=50, num_packets=2000, seed=3))
        wal.close()
        with pytest.raises(WalError, match="already holds"):
            ServiceWal(str(path), segment_seals=2).attach(service)

    def test_segment_dir_resume_starts_next_segment(self, controller, tmp_path):
        path = tmp_path / "seg"
        service = self._service(controller)
        wal = ServiceWal(str(path), segment_seals=2).attach(service)
        service.ingest(zipf_trace(num_flows=50, num_packets=2000, seed=3))
        wal.close()
        last = wal_segments(str(path))[-1][0]
        wal2 = ServiceWal(str(path), segment_seals=2, resume=True).attach(
            service
        )
        assert wal_segments(str(path))[-1][0] == last + 1
        service.ingest(zipf_trace(num_flows=50, num_packets=2000, seed=4))
        wal2.close()
        recovered = recover_service_artifact(str(path))
        reference = service_checkpoint(service)
        assert _strip_timing(recovered) == _strip_timing(reference)


class TestStreamingReader:
    """Satellite regression: the record reader must stream, not slurp."""

    def _write_big_wal(self, path, records=400, payload_cells=2000):
        filler = list(range(payload_cells))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "base", "version": 1}) + "\n")
            for i in range(records):
                fh.write(
                    json.dumps(
                        {"type": "seal", "index": i, "tasks": {"0": filler}}
                    )
                    + "\n"
                )
        return os.path.getsize(path)

    def test_iteration_memory_stays_far_below_file_size(self, tmp_path):
        path = str(tmp_path / "big.wal")
        size = self._write_big_wal(path)
        assert size > 2_000_000  # the regression needs a genuinely big log

        tracemalloc.start()
        count = 0
        for record in iter_wal_records(path):
            count += 1
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == 401
        # A slurping reader holds the whole file (plus parsed records); the
        # streaming reader's peak is one record's worth.
        assert peak < size / 4

    def test_streaming_reader_matches_list_reader(self, tmp_path):
        path = str(tmp_path / "small.wal")
        self._write_big_wal(path, records=5, payload_cells=10)
        assert list(iter_wal_records(path)) == read_wal_records(path)

    def test_streaming_reader_tolerates_torn_tail_only(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        self._write_big_wal(path, records=3, payload_cells=4)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "seal", "ind')
        assert len(list(iter_wal_records(path))) == 4
        # ... but a parse failure followed by more records is corruption.
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(WalError, match="mid-log"):
            list(iter_wal_records(path))
