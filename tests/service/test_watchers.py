"""Watcher rules: thresholds, cooldowns, and transactional reactions."""

import os

import pytest

from repro.core.controller import FlyMonController
from repro.faults import FAULTS, SITE_RULE_APPLY, configure_from_env
from repro.service import (
    CardinalityQuery,
    MeasurementService,
    TaskRef,
    Watcher,
    cardinality_metric,
    fill_factor_metric,
    heavy_hitter_count_metric,
    resize_action,
)
from repro.traffic import zipf_trace

from service_tasks import freq_task, hll_task


def constant_metric(value):
    return lambda service, sealed: value


class TestThresholds:
    def test_requires_a_threshold(self):
        with pytest.raises(ValueError):
            Watcher("w", constant_metric(1))

    def test_fires_above_and_below(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller)
        above = service.add_watcher(
            Watcher("above", constant_metric(10), above=5)
        )
        below = service.add_watcher(
            Watcher("below", constant_metric(10), below=20)
        )
        quiet = service.add_watcher(
            Watcher("quiet", constant_metric(10), above=50)
        )
        service.ingest(zipf_trace(num_flows=20, num_packets=100, seed=31))
        sealed = service.rotate()
        by_name = {e.watcher: e for e in sealed.watcher_events}
        assert by_name["above"].fired and by_name["above"].direction == "above"
        assert by_name["below"].fired and by_name["below"].direction == "below"
        assert not by_name["quiet"].fired
        assert by_name["quiet"].value == 10.0
        assert service.watcher_log == sealed.watcher_events

    def test_cooldown_suppresses_refiring(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller)
        service.add_watcher(
            Watcher("w", constant_metric(10), above=5, cooldown_epochs=2)
        )
        trace = zipf_trace(num_flows=20, num_packets=100, seed=32)
        fired = []
        for _ in range(4):
            service.ingest(trace)
            fired.append(service.rotate().watcher_events[0].fired)
        assert fired == [True, False, True, False]

    @pytest.mark.parametrize(
        "cooldown,expected",
        [
            # "At most once per cooldown_epochs consecutive epochs": fired
            # at e, eligible again at e + cooldown_epochs.  Values <= 1
            # never suppress.
            (0, [True, True, True, True]),
            (1, [True, True, True, True]),
            (2, [True, False, True, False]),
            (3, [True, False, False, True]),
        ],
    )
    def test_cooldown_window_semantics(self, controller, cooldown, expected):
        controller.add_task(freq_task())
        service = MeasurementService(controller)
        service.add_watcher(
            Watcher(
                "w", constant_metric(10), above=5, cooldown_epochs=cooldown
            )
        )
        trace = zipf_trace(num_flows=20, num_packets=100, seed=32)
        fired = []
        for _ in range(4):
            service.ingest(trace)
            fired.append(service.rotate().watcher_events[0].fired)
        assert fired == expected

    @pytest.mark.parametrize(
        "kwargs,value,fired,direction,threshold",
        [
            # Fired rules attribute the crossed side.
            (dict(above=5), 10, True, "above", 5),
            (dict(below=20), 10, True, "below", 20),
            (dict(above=5, below=3), 10, True, "above", 5),
            (dict(above=15, below=12), 10, True, "below", 12),
            # Quiet rules attribute the configured side -- a below-only
            # watcher must not report threshold=None/"above".
            (dict(above=50), 10, False, "above", 50),
            (dict(below=5), 10, False, "below", 5),
            (dict(above=50, below=5), 10, False, "above", 50),
        ],
    )
    def test_threshold_attribution(
        self, controller, kwargs, value, fired, direction, threshold
    ):
        controller.add_task(freq_task())
        service = MeasurementService(controller)
        service.add_watcher(Watcher("w", constant_metric(value), **kwargs))
        service.ingest(zipf_trace(num_flows=20, num_packets=100, seed=32))
        event = service.rotate().watcher_events[0]
        assert event.fired is fired
        assert event.direction == direction
        assert event.threshold == threshold


class TestMetrics:
    def test_builtin_metrics_track_sealed_state(self, controller):
        cms = TaskRef(controller.add_task(freq_task(threshold=100)))
        hll = TaskRef(controller.add_task(hll_task()))
        service = MeasurementService(controller)
        service.register_series("card", CardinalityQuery(hll))
        service.add_watcher(Watcher("fill", fill_factor_metric(cms), above=2.0))
        service.add_watcher(
            Watcher("card", cardinality_metric(hll), above=1e12)
        )
        service.add_watcher(
            Watcher("hh", heavy_hitter_count_metric(cms), above=1e12)
        )
        service.ingest(zipf_trace(num_flows=300, num_packets=3000, seed=33))
        sealed = service.rotate()
        by_name = {e.watcher: e for e in sealed.watcher_events}
        assert 0.0 < by_name["fill"].value < 1.0
        assert by_name["card"].value == sealed.outputs["card"]
        assert by_name["hh"].value >= 1.0


class TestReactions:
    def test_resize_action_repoints_ref(self, controller):
        ref = TaskRef(controller.add_task(freq_task(memory=1024)))
        service = MeasurementService(controller)
        service.add_watcher(
            Watcher(
                "grow",
                fill_factor_metric(ref),
                above=0.0,
                action=resize_action(ref),
                cooldown_epochs=1_000_000,  # one resize only
            )
        )
        service.ingest(zipf_trace(num_flows=500, num_packets=2000, seed=34))
        event = service.rotate().watcher_events[0]
        assert event.fired and event.outcome == "ok"
        assert "resize" in event.action
        assert ref.handle.task.memory == 2048
        assert controller.verify_integrity().ok
        # The new deployment keeps measuring and sealing.
        service.ingest(zipf_trace(num_flows=100, num_packets=500, seed=35))
        sealed = service.rotate()
        assert sealed.has_task(ref.handle.task_id)
        assert any(sum(r) for r in map(list, sealed.read_rows(ref.handle)))

    def test_shrink_rounds_to_nearest_power_of_two(self, controller):
        # 1024 * 0.75 = 768, equidistant between 512 and 1024: ties round
        # down, so the shrink actually shrinks instead of rounding home.
        ref = TaskRef(controller.add_task(freq_task(memory=1024)))
        service = MeasurementService(controller)
        service.add_watcher(
            Watcher(
                "shrink",
                fill_factor_metric(ref),
                above=0.0,
                action=resize_action(ref, factor=0.75),
                cooldown_epochs=1_000_000,
            )
        )
        service.ingest(zipf_trace(num_flows=500, num_packets=2000, seed=34))
        event = service.rotate().watcher_events[0]
        assert event.fired and event.outcome == "ok"
        assert ref.handle.task.memory == 512

    def test_clamped_resize_is_a_noop_and_keeps_cooldown(self, controller):
        # Already at max_memory: the resize has nothing to do.  It must
        # report a distinct "noop" outcome and must NOT consume the
        # cooldown -- the watcher stays eligible at the very next seal.
        ref = TaskRef(controller.add_task(freq_task(memory=1024)))
        service = MeasurementService(controller)
        service.add_watcher(
            Watcher(
                "grow",
                fill_factor_metric(ref),
                above=0.0,
                action=resize_action(ref, max_memory=1024),
                cooldown_epochs=1_000_000,
            )
        )
        trace = zipf_trace(num_flows=500, num_packets=2000, seed=34)
        for expected_epoch in (0, 1):
            service.ingest(trace)
            event = service.rotate().watcher_events[0]
            assert event.epoch == expected_epoch
            assert event.fired and event.outcome == "noop"
            assert "already at 1024" in event.error
        assert ref.handle.task.memory == 1024

    def test_placement_blocked_resize_rolls_back(self):
        # One group, 4096-bucket registers.  A blocker task with a disjoint
        # filter shares each CMU and pins 2048 buckets, so doubling the
        # watched task to 4096 fails make-before-break (registers full) and
        # remove-then-add (only a fragmented 2048 window left): the resize
        # rolls back to the original deployment.
        import dataclasses

        from repro.core.task import TaskFilter

        controller = FlyMonController(
            num_groups=1, num_cmus=3, register_size=4096
        )
        blocker = dataclasses.replace(
            freq_task(memory=2048),
            filter=TaskFilter.of(src_ip=(0x80000000, 1)),
        )
        controller.add_task(blocker)
        watched = dataclasses.replace(
            freq_task(memory=2048),
            filter=TaskFilter.of(src_ip=(0x00000000, 1)),
        )
        ref = TaskRef(controller.add_task(watched))
        original = ref.handle
        service = MeasurementService(controller)
        service.add_watcher(
            Watcher(
                "grow",
                fill_factor_metric(ref),
                above=0.0,
                action=resize_action(ref),
            )
        )
        service.ingest(zipf_trace(num_flows=100, num_packets=500, seed=36))
        event = service.rotate().watcher_events[0]
        assert event.fired and event.outcome == "rolled_back"
        assert event.error
        assert ref.handle is original  # ref still points at the live task
        assert controller.verify_integrity().ok
        service.ingest(zipf_trace(num_flows=100, num_packets=500, seed=37))
        assert service.rotate().has_task(original.task_id)

    def test_fault_injected_resize_keeps_service_alive(self, controller):
        """Acceptance criterion: a watcher-triggered resize whose rule
        install is fault-injected to fail (FLYMON_FAULTS) rolls back and
        the service keeps sealing and serving queries."""
        ref = TaskRef(controller.add_task(freq_task(memory=1024)))
        original = ref.handle
        digest_before = controller.control_digest()

        # Arm after the initial deployment so only the watcher-triggered
        # reconfiguration hits the injected failure.
        os.environ["FLYMON_FAULTS"] = "rule_apply"
        try:
            configure_from_env()
        finally:
            del os.environ["FLYMON_FAULTS"]
        assert FAULTS.armed
        service = MeasurementService(controller)
        service.add_watcher(
            Watcher(
                "grow",
                fill_factor_metric(ref),
                above=0.0,
                action=resize_action(ref),
                cooldown_epochs=1_000_000,  # one attempt only
            )
        )
        service.ingest(zipf_trace(num_flows=300, num_packets=1000, seed=38))
        event = service.rotate().watcher_events[0]
        assert event.fired and event.outcome in ("failed", "rolled_back")
        assert event.error
        assert [f["site"] for f in FAULTS.fired()] == [SITE_RULE_APPLY]
        FAULTS.disarm()

        # Rollback left the control plane bit-identical and the original
        # deployment live ...
        assert ref.handle is original
        assert controller.control_digest() == digest_before
        assert controller.verify_integrity().ok
        # ... and the service keeps ingesting, sealing, and answering.
        trace = zipf_trace(num_flows=300, num_packets=1000, seed=39)
        service.ingest(trace)
        sealed = service.rotate()
        assert sealed.has_task(original.task_id)
        assert sum(sum(r) for r in map(list, sealed.read_rows(original))) > 0

    def test_generic_action_failure_is_contained(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller)

        def explode(service, sealed):
            raise RuntimeError("reaction bug")

        service.add_watcher(
            Watcher("boom", constant_metric(1), above=0, action=explode)
        )
        service.ingest(zipf_trace(num_flows=20, num_packets=100, seed=40))
        event = service.rotate().watcher_events[0]
        assert event.outcome == "failed"
        assert "reaction bug" in event.error
        # Sealing continues afterwards.
        service.ingest(zipf_trace(num_flows=20, num_packets=100, seed=41))
        assert service.rotate().index == 1
