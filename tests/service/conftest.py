"""Service-suite fixtures: a pristine fault injector around every test."""

import pytest

from repro.faults import FAULTS


@pytest.fixture(autouse=True)
def clean_faults():
    """No armed sites and zeroed hit counters before and after each test."""
    FAULTS.reset()
    yield
    FAULTS.reset()
