"""Typed-query resolution: live window, sealed epochs, error surface."""

import pytest

from repro.service import (
    CardinalityQuery,
    EntropyQuery,
    ExistenceQuery,
    FrequencyQuery,
    HeavyHitterQuery,
    InterArrivalQuery,
    MeasurementService,
    TaskRef,
    UnsupportedQueryError,
    resolve,
)
from repro.traffic import zipf_trace

from service_tasks import (
    bloom_task,
    freq_task,
    hll_task,
    interarrival_task,
    mrac_task,
)


@pytest.fixture
def trace():
    return zipf_trace(num_flows=300, num_packets=4000, seed=21)


def top_flows(trace, n=5):
    sizes = sorted(
        trace.flow_sizes(freq_task().key).items(), key=lambda kv: -kv[1]
    )
    return [flow for flow, _ in sizes[:n]]


class TestSealedEqualsPreSealLive:
    """A sealed answer must equal the live answer at the instant of seal."""

    def _seal_with(self, controller, task, trace):
        handle = controller.add_task(task)
        service = MeasurementService(controller)
        service.ingest(trace)
        return service, handle

    def test_frequency(self, controller, trace):
        service, handle = self._seal_with(controller, freq_task(), trace)
        flows = top_flows(trace)
        live = {flow: handle.algorithm.query(flow) for flow in flows}
        sealed = service.rotate()
        for flow in flows:
            assert resolve(FrequencyQuery(handle, flow), sealed) == live[flow]
            # The live window restarted from zero after the seal.
            assert resolve(FrequencyQuery(handle, flow)) == 0

    def test_cardinality(self, controller, trace):
        service, handle = self._seal_with(controller, hll_task(), trace)
        live = handle.algorithm.estimate()
        sealed = service.rotate()
        assert resolve(CardinalityQuery(handle), sealed) == live

    def test_entropy(self, controller, trace):
        service, handle = self._seal_with(controller, mrac_task(), trace)
        live = handle.algorithm.estimate_entropy()
        sealed = service.rotate()
        assert resolve(EntropyQuery(handle), sealed) == live

    def test_existence(self, controller, trace):
        service, handle = self._seal_with(controller, bloom_task(), trace)
        flow = top_flows(trace, 1)[0]
        assert handle.algorithm.contains(flow)
        sealed = service.rotate()
        assert resolve(ExistenceQuery(handle, flow), sealed) is True
        # After the reset the live filter is empty again.
        assert resolve(ExistenceQuery(handle, flow)) is False

    def test_interarrival(self, controller, trace):
        service, handle = self._seal_with(
            controller, interarrival_task(), trace
        )
        flow = top_flows(trace, 1)[0]
        live = handle.algorithm.query(flow)
        assert live > 0
        sealed = service.rotate()
        assert resolve(InterArrivalQuery(handle, flow), sealed) == live


class TestHeavyHitters:
    def test_candidates_path(self, controller, trace):
        handle = controller.add_task(freq_task())
        service = MeasurementService(controller)
        service.ingest(trace)
        candidates = tuple(top_flows(trace, 20))
        live = handle.algorithm.heavy_hitters(candidates, 100)
        sealed = service.rotate()
        query = HeavyHitterQuery(handle, threshold=100, candidates=candidates)
        assert resolve(query, sealed) == live
        assert live  # the zipf head crosses the threshold

    def test_digest_path_is_per_epoch(self, controller, trace):
        handle = controller.add_task(freq_task(threshold=100))
        service = MeasurementService(controller)
        service.ingest(trace)
        live = resolve(HeavyHitterQuery(handle))
        sealed = service.rotate()
        assert resolve(HeavyHitterQuery(handle), sealed) == live
        assert live
        # Digests were drained into the epoch: the new window starts empty.
        assert resolve(HeavyHitterQuery(handle)) == set()

    def test_digest_threshold_must_match_deployment(self, controller, trace):
        handle = controller.add_task(freq_task(threshold=100))
        service = MeasurementService(controller)
        service.ingest(trace)
        sealed = service.rotate()
        with pytest.raises(UnsupportedQueryError):
            resolve(HeavyHitterQuery(handle, threshold=7), sealed)

    def test_digest_path_needs_deployed_threshold(self, controller, trace):
        handle = controller.add_task(freq_task())  # no threshold
        service = MeasurementService(controller)
        service.ingest(trace)
        sealed = service.rotate()
        with pytest.raises(UnsupportedQueryError):
            resolve(HeavyHitterQuery(handle), sealed)

    def test_candidates_need_some_threshold(self, controller, trace):
        handle = controller.add_task(freq_task())
        with pytest.raises(UnsupportedQueryError):
            resolve(HeavyHitterQuery(handle, candidates=((1,),)))


class TestErrorSurface:
    def test_wrong_algorithm_raises(self, controller):
        cms = controller.add_task(freq_task())
        hll = controller.add_task(hll_task())
        with pytest.raises(UnsupportedQueryError):
            resolve(CardinalityQuery(cms))
        with pytest.raises(UnsupportedQueryError):
            resolve(ExistenceQuery(cms, (1,)))
        with pytest.raises(UnsupportedQueryError):
            resolve(EntropyQuery(hll))
        with pytest.raises(UnsupportedQueryError):
            resolve(FrequencyQuery(hll, (1,)))

    def test_bad_target_raises(self):
        with pytest.raises(TypeError):
            resolve(CardinalityQuery("not a handle"))

    def test_taskref_target(self, controller, trace):
        handle = controller.add_task(freq_task())
        ref = TaskRef(handle)
        service = MeasurementService(controller)
        service.ingest(trace)
        flow = top_flows(trace, 1)[0]
        direct = resolve(FrequencyQuery(handle, flow))
        assert resolve(FrequencyQuery(ref, flow)) == direct
        sealed = service.rotate()
        assert resolve(FrequencyQuery(ref, flow), sealed) == direct
