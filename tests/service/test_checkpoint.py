"""Service artifacts: JSON roundtrip, placement verification, versioning."""

import json

import pytest

from repro.service import (
    CardinalityQuery,
    FrequencyQuery,
    HeavyHitterQuery,
    MeasurementService,
    TaskRef,
    Watcher,
    fill_factor_metric,
    load_service_state,
    resize_action,
    resolve,
    service_checkpoint,
)
from repro.traffic import zipf_trace

from service_tasks import freq_task, hll_task


def roundtrip(service):
    """Checkpoint -> JSON text -> restore, as the CLI does on disk."""
    artifact = json.loads(json.dumps(service_checkpoint(service)))
    return load_service_state(artifact)


def build_service(controller, *, threshold=None):
    cms = controller.add_task(freq_task(threshold=threshold))
    hll = controller.add_task(hll_task())
    service = MeasurementService(controller, epoch_packets=700, retain=8)
    service.register_series("card", CardinalityQuery(hll))
    return service, cms, hll


class TestRoundtrip:
    def test_queries_are_bit_identical(self, controller):
        service, cms, hll = build_service(controller)
        trace = zipf_trace(num_flows=300, num_packets=3000, seed=51)
        service.ingest(trace)
        service.rotate()

        restored = roundtrip(service)
        assert len(restored.epochs) == len(service.epochs)
        r_cms, r_hll = restored.tasks
        flows = sorted(trace.flow_sizes(cms.task.key))[:10]
        for live_sealed, back_sealed in zip(service.epochs, restored.epochs):
            assert back_sealed.index == live_sealed.index
            assert back_sealed.packets == live_sealed.packets
            for flow in flows:
                assert restored.query(
                    FrequencyQuery(r_cms, flow), epoch=back_sealed
                ) == resolve(FrequencyQuery(cms, flow), live_sealed)
            assert restored.query(
                CardinalityQuery(r_hll), epoch=back_sealed
            ) == resolve(CardinalityQuery(hll), live_sealed)

    def test_series_watchers_and_stats_survive(self, controller):
        service, cms, hll = build_service(controller)
        service.add_watcher(
            Watcher("card", lambda s, e: e.outputs["card"], above=0.0)
        )
        service.ingest(zipf_trace(num_flows=200, num_packets=2500, seed=52))
        service.rotate()

        restored = roundtrip(service)
        assert restored.series("card") == [
            (index, float(value)) for index, value in service.series("card")
        ]
        assert len(restored.watcher_log) == len(service.watcher_log)
        assert all(e["watcher"] == "card" for e in restored.watcher_log)
        assert all(e["fired"] for e in restored.watcher_log)
        assert restored.rotation["epoch_packets"] == 700
        with pytest.raises(KeyError):
            restored.series("nope")

    def test_digests_survive(self, controller):
        service, cms, hll = build_service(controller, threshold=100)
        service.ingest(zipf_trace(num_flows=300, num_packets=4000, seed=53))
        sealed = service.rotate()
        live = resolve(HeavyHitterQuery(cms), sealed)
        assert live

        restored = roundtrip(service)
        assert restored.query(HeavyHitterQuery(restored.tasks[0])) == live

    def test_roundtrip_across_watcher_resize(self, controller):
        """The artifact's controller replay must land the post-resize task
        at its live placement, or the sealed cells are uninterpretable."""
        ref = TaskRef(controller.add_task(freq_task(memory=1024)))
        service = MeasurementService(controller, epoch_packets=1000, retain=8)
        service.add_watcher(
            Watcher(
                "grow",
                fill_factor_metric(ref),
                above=0.0,
                action=resize_action(ref),
                cooldown_epochs=1_000_000,
            )
        )
        trace = zipf_trace(num_flows=300, num_packets=3000, seed=54)
        service.ingest(trace)
        service.rotate()
        assert ref.handle.task.memory == 2048  # the watcher resized

        restored = roundtrip(service)
        last = service.latest
        flows = sorted(trace.flow_sizes(ref.handle.task.key))[:10]
        for flow in flows:
            live = resolve(FrequencyQuery(ref, flow), last)
            assert restored.query(FrequencyQuery(restored.tasks[-1], flow)) == live


class TestValidation:
    def test_version_mismatch_raises(self, controller):
        service, _, _ = build_service(controller)
        artifact = service_checkpoint(service)
        artifact["version"] = 99
        with pytest.raises(ValueError, match="version"):
            load_service_state(artifact)

    def test_placement_drift_raises(self, controller):
        service, cms, _ = build_service(controller)
        service.ingest(zipf_trace(num_flows=100, num_packets=1400, seed=55))
        artifact = json.loads(json.dumps(service_checkpoint(service)))
        artifact["tasks"][0]["placement"][0][2] += 64  # forged row base
        with pytest.raises(ValueError, match="placement"):
            load_service_state(artifact)

    def test_stale_epoch_raises(self, controller):
        service, _, _ = build_service(controller)
        service.ingest(zipf_trace(num_flows=100, num_packets=1400, seed=56))
        restored = roundtrip(service)
        from repro.service import StaleEpochError

        with pytest.raises(StaleEpochError):
            restored.epoch(10_000)
