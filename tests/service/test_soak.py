"""Service soak: long streaming runs leave no residual state and watcher
behaviour is deterministic run-to-run.

The quick variant always runs; set ``FLYMON_SOAK=1`` for the full
~200k-packet, 24-epoch, 2-worker soak used by CI's soak leg.
"""

import dataclasses
import os

import pytest

from repro.core.controller import FlyMonController
from repro.service import (
    CardinalityQuery,
    MeasurementService,
    TaskRef,
    Watcher,
    cardinality_metric,
    fill_factor_metric,
    resize_action,
)
from repro.traffic import zipf_trace
from repro.traffic.packet import PACKET_FIELDS
from repro.traffic.trace import Trace

from service_tasks import freq_task, hll_task

FULL_SOAK = os.environ.get("FLYMON_SOAK") == "1"


def run_soak(num_packets, workers, chunk=4096, epochs=24):
    trace = zipf_trace(
        num_flows=max(200, num_packets // 100),
        num_packets=num_packets,
        seed=71,
    )
    controller = FlyMonController(num_groups=3)
    cms = TaskRef(controller.add_task(freq_task(memory=1024)))
    hll = TaskRef(controller.add_task(hll_task()))
    service = MeasurementService(
        controller,
        epoch_packets=len(trace) // epochs,
        retain=8,
        workers=workers,
    )
    service.register_series("card", CardinalityQuery(hll))
    service.add_watcher(
        Watcher(
            "grow",
            fill_factor_metric(cms),
            above=0.5,
            action=resize_action(cms),
            cooldown_epochs=2,
        )
    )
    service.add_watcher(
        Watcher("card_spike", cardinality_metric(hll), above=50.0)
    )
    for start in range(0, len(trace), chunk):
        service.ingest(
            Trace(
                {
                    f: trace.columns[f][start : start + chunk]
                    for f in PACKET_FIELDS
                }
            )
        )
    if service.stats()["epoch_fill"]:
        service.rotate()
    return trace, controller, service, (cms, hll)


def check_soak(num_packets, workers):
    trace, controller, service, (cms, hll) = run_soak(num_packets, workers)
    stats = service.stats()
    assert stats["epoch"] >= 20
    assert stats["packets_total"] == len(trace)
    assert len(service.epochs) <= 8  # the ring stayed bounded

    # No state leak: after the final seal every live register row is zero.
    for handle in controller.tasks:
        for row in handle.rows:
            assert row.read().sum() == 0
    assert controller.verify_integrity().ok

    # Watcher determinism: an identical second run fires the same watchers
    # at the same epochs with the same metric values.
    _, _, service2, _ = run_soak(num_packets, workers)
    log1 = [dataclasses.asdict(e) for e in service.watcher_log]
    log2 = [dataclasses.asdict(e) for e in service2.watcher_log]
    assert log1 == log2
    assert any(e["fired"] for e in log1)  # the soak actually exercised them
    assert service2.series("card") == service.series("card")


def test_soak_quick():
    check_soak(num_packets=30_000, workers=2)


@pytest.mark.skipif(not FULL_SOAK, reason="set FLYMON_SOAK=1 for the full soak")
def test_soak_full():
    check_soak(num_packets=200_000, workers=2)
