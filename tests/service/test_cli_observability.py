"""CLI flows for the flight recorder: `repro profile`, `repro top`, and
`repro bench-compare`."""

import json

import pytest

from repro import telemetry
from repro.cli import main


class TestProfile:
    def test_stream_profile_prints_phase_tree(self, capsys):
        rc = main(
            [
                "profile",
                "--packets", "4000",
                "--flows", "300",
                "--seed", "3",
                "--epoch-size", "500",
                "--chunk", "1000",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "workload=stream" in out
        assert "service.rotate" in out
        assert "rotate.reset" in out
        assert "measured wall:" in out
        assert "recorded phases cover" in out
        # The command must not leave the shared recorder enabled.
        assert telemetry.RECORDER.enabled is False

    def test_batch_profile_writes_chrome_trace_and_json(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        spans_path = tmp_path / "spans.json"
        rc = main(
            [
                "profile",
                "--workload", "batch",
                "--packets", "4000",
                "--flows", "300",
                "--seed", "3",
                "--workers", "2",
                "--trace-out", str(trace_path),
                "--json", str(spans_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "workload=batch" in out
        assert "shard.run" in out

        chrome = json.loads(trace_path.read_text())
        assert chrome["displayTimeUnit"] == "ms"
        assert chrome["otherData"]["workload"] == "batch"
        events = chrome["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert {"shard.run", "shard.dispatch"} <= {e["name"] for e in events}

        payload = json.loads(spans_path.read_text())
        assert payload["wall_ms"] > 0
        assert len(payload["spans"]) == len(events)

    def test_unknown_task_preset_fails(self, capsys):
        rc = main(["profile", "--packets", "100", "--tasks", "bogus"])
        assert rc == 2
        assert "bogus" in capsys.readouterr().err


class TestTop:
    def test_no_clear_appends_frames_and_summary(self, capsys):
        rc = main(
            [
                "top",
                "--packets", "5000",
                "--flows", "300",
                "--seed", "4",
                "--epoch-size", "800",
                "--chunk", "1000",
                "--workers", "2",
                "--no-clear",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "\x1b[2J" not in out  # no-clear means no terminal escapes
        assert out.count("repro top") >= 5  # one frame per chunk
        assert "rate" in out and "kpps" in out
        assert "sealed" in out
        assert "watchers" in out
        # Sharded ingest surfaces per-shard utilization bars.
        assert "shard 0: busy" in out
        assert "served " in out and " packets across " in out

    def test_watch_fill_requires_hh_task(self, capsys):
        rc = main(
            [
                "top",
                "--packets", "100",
                "--tasks", "card",
                "--watch-fill", "0.5",
            ]
        )
        assert rc == 2
        assert "watch-fill" in capsys.readouterr().err


class TestBenchCompare:
    def _write_result(self, directory, speedup=2.0):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_demo.json").write_text(
            json.dumps({"name": "demo", "speedup": speedup})
        )

    def test_update_then_compare_ok(self, tmp_path, capsys):
        results = tmp_path / "results"
        baseline = tmp_path / "baseline.json"
        self._write_result(results, speedup=2.0)
        rc = main(
            [
                "bench-compare",
                "--results-dir", str(results),
                "--baseline", str(baseline),
                "--update-baseline",
            ]
        )
        assert rc == 0
        assert "baseline with 1 bench(es)" in capsys.readouterr().out
        rc = main(
            [
                "bench-compare",
                "--results-dir", str(results),
                "--baseline", str(baseline),
                "--verbose",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 regression(s)" in out

    def test_regression_sets_exit_code(self, tmp_path, capsys):
        results = tmp_path / "results"
        baseline = tmp_path / "baseline.json"
        self._write_result(results, speedup=2.0)
        assert main(
            [
                "bench-compare",
                "--results-dir", str(results),
                "--baseline", str(baseline),
                "--update-baseline",
            ]
        ) == 0
        self._write_result(results, speedup=0.5)
        rc = main(
            [
                "bench-compare",
                "--results-dir", str(results),
                "--baseline", str(baseline),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSED" in out
        assert "demo:speedup" in out

    def test_missing_results_dir_errors(self, tmp_path, capsys):
        rc = main(
            [
                "bench-compare",
                "--results-dir", str(tmp_path / "nothing"),
                "--baseline", str(tmp_path / "baseline.json"),
            ]
        )
        assert rc == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_missing_baseline_is_not_an_error(self, tmp_path, capsys):
        results = tmp_path / "results"
        self._write_result(results)
        rc = main(
            [
                "bench-compare",
                "--results-dir", str(results),
                "--baseline", str(tmp_path / "missing.json"),
            ]
        )
        assert rc == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_record_history_appends_ledger(self, tmp_path, capsys):
        results = tmp_path / "results"
        history = tmp_path / "history.jsonl"
        self._write_result(results)
        rc = main(
            [
                "bench-compare",
                "--results-dir", str(results),
                "--baseline", str(tmp_path / "missing.json"),
                "--record-history", str(history),
            ]
        )
        assert rc == 0
        assert "history: recorded 1 bench(es)" in capsys.readouterr().out
        entries = [
            json.loads(line) for line in history.read_text().splitlines()
        ]
        assert entries[0]["benches"]["demo"] == {"speedup": 2.0}
