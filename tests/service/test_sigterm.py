"""Graceful SIGTERM for ``repro serve``: seal the tail, flush the WAL.

A supervisor's SIGTERM must not tear the service down mid-window.  The
serve loop installs a handler that stops ingesting, seals the open
window, flushes/reattaches the WAL, and closes the shard pool -- then
exits 0.  The on-disk WAL must recover cleanly afterwards.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import recover_service_artifact

REPO = Path(__file__).resolve().parents[2]

SERVE_ARGS = [
    "serve",
    "--generator", "zipf",
    "--packets", "400000",
    "--flows", "1000",
    "--seed", "9",
    "--epoch-size", "2000",
    "--chunk", "500",
    "--retain", "64",
    "--tasks", "hh,card",
    "--threshold", "80",
]


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    env.pop("FLYMON_FAULTS", None)
    return env


def _serve_until_first_epoch(tmp_path, wal_dir):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *SERVE_ARGS,
         "--wal", str(wal_dir)],
        env=_cli_env(), cwd=str(tmp_path),
        stdout=subprocess.PIPE, text=True,
    )
    lines = []
    deadline = time.monotonic() + 240
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        if line.startswith("epoch "):
            return proc, lines
    proc.kill()
    pytest.fail("serve never sealed an epoch:\n" + "".join(lines))


class TestGracefulSigterm:
    def test_sigterm_seals_tail_and_exits_clean(self, tmp_path):
        wal_dir = tmp_path / "wal"
        proc, lines = _serve_until_first_epoch(tmp_path, wal_dir)
        try:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=240)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=60)
        output = "".join(lines) + out
        assert proc.returncode == 0, output
        assert "sigterm: sealed the open window" in output
        # the final stats line ran, i.e. the full shutdown path completed
        assert "served " in output

        # the flushed WAL recovers: every sealed epoch is durable,
        # including the tail window sealed by the handler itself.
        recovered = recover_service_artifact(str(wal_dir))
        assert recovered["epochs"], output
        indices = [e["index"] for e in recovered["epochs"]]
        assert indices == sorted(indices)
        printed = {
            int(line.split(":")[0].split()[1])
            for line in output.splitlines()
            if line.startswith("epoch ")
        }
        # everything announced on stdout before the signal is on disk
        assert printed <= set(indices), (printed, indices)

    def test_sigterm_before_any_epoch_still_exits_clean(self, tmp_path):
        """Signal landing inside the very first window: the handler seals
        the partial epoch 0 and still exits 0."""
        wal_dir = tmp_path / "wal"
        health = tmp_path / "health.json"
        args = [a for a in SERVE_ARGS]
        args[args.index("--epoch-size") + 1] = "300000"  # never seals alone
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *args,
             "--wal", str(wal_dir), "--health-out", str(health)],
            env=_cli_env(), cwd=str(tmp_path),
            stdout=subprocess.PIPE, text=True,
        )
        try:
            # the health file is written from inside the ingest loop, i.e.
            # strictly after the SIGTERM handler is installed
            deadline = time.monotonic() + 240
            while not health.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert health.exists(), "serve never reached the ingest loop"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=240)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=60)
        assert proc.returncode == 0, out
        assert "sigterm: sealed the open window" in out
        assert "served " in out
        # the handler sealed the partial first window into the WAL
        recovered = recover_service_artifact(str(wal_dir))
        assert [e["index"] for e in recovered["epochs"]] == [0]
