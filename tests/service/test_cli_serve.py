"""End-to-end CLI flow: `repro serve` -> artifact -> `repro query`."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def artifact(tmp_path, capsys):
    path = tmp_path / "service.json"
    rc = main(
        [
            "serve",
            "--generator", "zipf",
            "--packets", "6000",
            "--flows", "400",
            "--seed", "9",
            "--epoch-size", "500",
            "--retain", "8",
            "--tasks", "hh,card",
            "--threshold", "50",
            "--watch-cardinality", "10",
            "--checkpoint", str(path),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    return path, out


class TestServe:
    def test_serve_reports_epochs_and_writes_artifact(self, artifact):
        path, out = artifact
        assert "epoch" in out
        assert "checkpoint:" in out
        state = json.loads(path.read_text())
        assert state["version"] == 1
        assert state["stats"]["epoch"] >= 10
        assert len(state["epochs"]) == 8  # bounded by --retain
        assert [t["algorithm"] for t in state["tasks"]] == ["cms", "hll"]
        assert any(
            event["watcher"] == "cardinality_spike"
            for event in state["watcher_log"]
        )

    def test_serve_rejects_unknown_preset(self, capsys):
        assert main(["serve", "--packets", "100", "--tasks", "bogus"]) != 0
        assert "bogus" in capsys.readouterr().err

    def test_serve_with_watch_fill_resizes(self, tmp_path, capsys):
        path = tmp_path / "resized.json"
        rc = main(
            [
                "serve",
                "--packets", "4000",
                "--flows", "2000",
                "--seed", "10",
                "--epoch-size", "1000",
                "--tasks", "hh",
                "--watch-fill", "0.01",
                "--checkpoint", str(path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fill_factor" in out
        state = json.loads(path.read_text())
        assert any(e["watcher"] == "fill_factor" for e in state["watcher_log"])


class TestQuery:
    def test_list(self, artifact, capsys):
        path, _ = artifact
        assert main(["query", "--input", str(path), "--list"]) == 0
        out = capsys.readouterr().out
        assert "cms" in out and "hll" in out
        assert "cardinality" in out  # the registered series

    def test_cardinality_and_series(self, artifact, capsys):
        path, _ = artifact
        assert main(
            ["query", "--input", str(path), "--task", "1",
             "--query", "cardinality"]
        ) == 0
        value = float(capsys.readouterr().out.strip().split()[-1])
        assert value > 0
        assert main(
            ["query", "--input", str(path), "--query", "series",
             "--series", "cardinality"]
        ) == 0
        series_lines = capsys.readouterr().out.strip().splitlines()
        assert len(series_lines) == 8  # one line per retained epoch

    def test_heavy_hitters_against_each_epoch(self, artifact, capsys):
        path, _ = artifact
        state = json.loads(path.read_text())
        for entry in state["epochs"]:
            assert main(
                ["query", "--input", str(path), "--task", "0",
                 "--epoch", str(entry["index"]), "--query", "heavy-hitters"]
            ) == 0
            capsys.readouterr()

    def test_frequency_needs_flow(self, artifact, capsys):
        path, _ = artifact
        assert main(
            ["query", "--input", str(path), "--query", "frequency"]
        ) != 0
        capsys.readouterr()
        assert main(
            ["query", "--input", str(path), "--query", "frequency",
             "--flow", "10.0.0.7"]
        ) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_tampered_artifact_is_rejected(self, artifact, capsys):
        path, _ = artifact
        state = json.loads(path.read_text())
        state["tasks"][0]["placement"][0][2] += 64
        path.write_text(json.dumps(state))
        assert main(["query", "--input", str(path), "--list"]) == 2
        assert "placement" in capsys.readouterr().err
