"""Storage fault injection: the WAL degradation ladder.

``--wal-policy fail`` stops ingest cleanly (sealed epoch intact, log
recoverable up to the last durable seal); ``--wal-policy degrade`` keeps
serving sealed queries, defers seals into a bounded retain-deep cache,
and reattaches with exponential backoff -- every sealed epoch that never
reaches stable storage is counted in ``lost_seals``, never silently
dropped.  Faults are armed programmatically via :data:`repro.faults.FAULTS`
(the autouse ``clean_faults`` fixture resets the registry around each
test).
"""

import time

import pytest

from repro.faults import (
    FAULTS,
    SITE_DISK_FULL,
    SITE_WAL_APPEND,
    SITE_WAL_FSYNC,
)
from repro.service import (
    HeavyHitterQuery,
    MeasurementService,
    ServiceWal,
    WalWriteError,
    recover_service_artifact,
    resolve,
    service_checkpoint,
)
from repro.traffic import zipf_trace

from service_tasks import freq_task


def _strip_timing(artifact):
    epochs = []
    for entry in artifact["epochs"]:
        entry = dict(entry)
        entry.pop("seal_ms", None)
        epochs.append(entry)
    return epochs


def _arm_next(site, arg=None):
    """Arm ``site`` to fire on its next hit (hit counters keep counting
    across the attach-time base write, so 'hit 1' would be in the past)."""
    return FAULTS.arm(site, hit=FAULTS.hit_count(site) + 1, arg=arg)


class TestDegradePolicy:
    def test_fsync_fault_degrades_then_reattaches_with_parity(
        self, controller, tmp_path
    ):
        controller.add_task(freq_task(threshold=80))
        service = MeasurementService(controller, epoch_packets=500, retain=4)
        wal = ServiceWal(
            str(tmp_path / "svc.wal"),
            policy="degrade",
            reattach_backoff_s=60.0,  # holds degraded until we expire it
        ).attach(service)

        service.ingest(zipf_trace(num_flows=100, num_packets=1500, seed=5))
        _arm_next(SITE_WAL_FSYNC)
        service.ingest(zipf_trace(num_flows=100, num_packets=1500, seed=6))
        assert wal.state == "degraded"
        assert wal.seals_deferred >= 1

        # The service never stopped answering: the live window and every
        # sealed epoch stay queryable while the log is degraded.
        sealed = service.latest
        assert sealed is not None
        assert resolve(HeavyHitterQuery(service.controller.tasks[0]), sealed)

        # Expire the backoff clock; the next seal reattaches and flushes
        # the cache.  (Waiting out a real backoff here would be timing-
        # dependent under a loaded test runner.)
        wal._next_attempt = time.monotonic() - 1.0
        service.ingest(zipf_trace(num_flows=100, num_packets=3000, seed=7))
        assert wal.state == "ok"
        assert wal.reattachments == 1
        assert wal.seals_recovered >= 1
        wal.close()

        recovered = recover_service_artifact(str(tmp_path / "svc.wal"))
        reference = service_checkpoint(service)
        assert _strip_timing(recovered) == _strip_timing(reference)
        assert wal.lost_seals == 0

    def test_close_forces_final_reattach(self, controller, tmp_path):
        controller.add_task(freq_task(threshold=80))
        service = MeasurementService(controller, epoch_packets=500, retain=4)
        wal = ServiceWal(
            str(tmp_path / "svc.wal"),
            policy="degrade",
            reattach_backoff_s=60.0,  # never elapses mid-run
        ).attach(service)
        service.ingest(zipf_trace(num_flows=100, num_packets=1500, seed=5))
        _arm_next(SITE_WAL_FSYNC)
        service.ingest(zipf_trace(num_flows=100, num_packets=3000, seed=6))
        assert wal.state == "degraded"
        wal.close()  # the forced final reattach ignores the backoff clock
        assert wal.state == "ok"
        recovered = recover_service_artifact(str(tmp_path / "svc.wal"))
        reference = service_checkpoint(service)
        assert _strip_timing(recovered) == _strip_timing(reference)

    def test_persistent_disk_full_fails_with_exact_loss_accounting(
        self, controller, tmp_path
    ):
        controller.add_task(freq_task(memory=512, depth=2))
        retain = 2
        service = MeasurementService(
            controller, epoch_packets=300, retain=retain
        )
        wal = ServiceWal(
            str(tmp_path / "svc.wal"),
            policy="degrade",
            reattach_backoff_s=0.0001,
            reattach_max_attempts=3,
        ).attach(service)
        service.ingest(zipf_trace(num_flows=60, num_packets=900, seed=1))
        durable_epochs = service.stats()["epoch"]

        FAULTS.arm(SITE_DISK_FULL, prob=1.0)  # persistent: every write
        service.ingest(zipf_trace(num_flows=60, num_packets=3000, seed=2))
        after_fault = service.stats()["epoch"] - durable_epochs
        assert after_fault >= retain + 2
        assert wal.state == "failed"
        assert wal.reattach_attempts >= 3

        # Exact accounting: every post-fault seal beyond the retain-deep
        # cache was evicted non-durable; the cache tail is merely deferred.
        assert wal.seals_deferred == after_fault
        assert wal.lost_seals == after_fault - retain
        assert wal.status()["lost_seals"] == wal.lost_seals

        # Sealed queries still answer in the failed state.
        assert service.latest is not None
        wal.close()  # forced reattach also hits disk_full; loss unchanged
        assert wal.lost_seals == after_fault - retain

        # Recovery returns the pre-fault durable prefix, not garbage.
        recovered = recover_service_artifact(str(tmp_path / "svc.wal"))
        indexes = [e["index"] for e in recovered["epochs"]]
        assert indexes == list(range(durable_epochs))[-retain:]


class TestFailPolicy:
    def test_append_fault_raises_with_sealed_epoch_intact(
        self, controller, tmp_path
    ):
        controller.add_task(freq_task(threshold=80))
        service = MeasurementService(controller, epoch_packets=500, retain=8)
        wal = ServiceWal(str(tmp_path / "svc.wal")).attach(service)
        service.ingest(zipf_trace(num_flows=100, num_packets=1500, seed=5))
        durable = len(service.epochs)

        _arm_next(SITE_WAL_APPEND)
        with pytest.raises(WalWriteError, match="seal write failed"):
            service.ingest(zipf_trace(num_flows=100, num_packets=600, seed=6))

        # The epoch sealed fine in memory -- only durability failed -- and
        # the engine did not double-seal or lose the window bookkeeping.
        assert wal.state == "failed"
        assert len(service.epochs) == durable + 1
        assert service.latest.index == durable
        assert resolve(
            HeavyHitterQuery(service.controller.tasks[0]), service.latest
        ) is not None

        # A failed fail-policy WAL refuses further seals; no half-written
        # log grows behind the operator's back.
        with pytest.raises(WalWriteError):
            service.ingest(zipf_trace(num_flows=100, num_packets=600, seed=7))
        wal.close()

        recovered = recover_service_artifact(str(tmp_path / "svc.wal"))
        assert [e["index"] for e in recovered["epochs"]] == list(
            range(durable)
        )

    def test_segmented_roll_fault_fail_policy(self, controller, tmp_path):
        controller.add_task(freq_task(memory=256, depth=1))
        service = MeasurementService(controller, epoch_packets=200, retain=4)
        wal = ServiceWal(str(tmp_path / "seg"), segment_seals=2).attach(
            service
        )
        from repro.faults import SITE_WAL_ROLL

        _arm_next(SITE_WAL_ROLL)
        with pytest.raises(WalWriteError):
            service.ingest(zipf_trace(num_flows=50, num_packets=2000, seed=3))
        assert wal.state == "failed"
        # Everything up to the interrupted roll is still recoverable.
        recovered = recover_service_artifact(str(tmp_path / "seg"))
        assert recovered["epochs"], "pre-roll seals lost"
        wal.close()

    def test_status_reports_last_error(self, controller, tmp_path):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=500, retain=4)
        wal = ServiceWal(str(tmp_path / "svc.wal")).attach(service)
        _arm_next(SITE_WAL_FSYNC)
        with pytest.raises(WalWriteError):
            service.ingest(zipf_trace(num_flows=50, num_packets=600, seed=1))
        status = wal.status()
        assert status["state"] == "failed"
        assert "seal" in status["last_error"]
        wal.close()
