"""The streaming service on the persistent shard runtime.

Epoch rotation is the reason the persistent pool exists: a per-epoch window
run must not pay fork + replica-build every time.  These tests pin the two
halves of that contract -- sealed epochs stay bit-identical to the
ephemeral runtime across many rotations (including the pool's in-place
seal), and a `repro serve --checkpoint` artifact produced under the
persistent runtime answers offline queries identically to one produced
under the ephemeral runtime.
"""

import json
import os

import pytest

from repro.cli import main
from repro.core.controller import FlyMonController
from repro.service import (
    CardinalityQuery,
    FrequencyQuery,
    MeasurementService,
    load_service_state,
)
from repro.traffic import zipf_trace
from repro.traffic.flows import KEY_SRC_IP
from repro.traffic.packet import PACKET_FIELDS
from repro.traffic.trace import Trace

from service_tasks import bloom_task, freq_task, hll_task

NUM_EPOCHS = 21


def _deploy(controller):
    return [
        controller.add_task(freq_task()),
        controller.add_task(hll_task()),
        controller.add_task(bloom_task()),
    ]


def _run_stream(trace, epoch_packets, runtime, workers=2):
    controller = FlyMonController(num_groups=3)
    handles = _deploy(controller)
    service = MeasurementService(
        controller,
        epoch_packets=epoch_packets,
        retain=NUM_EPOCHS + 2,
        workers=workers,
        runtime=runtime,
    )
    sealed = service.ingest(trace)
    rows = [
        [[v.tolist() for v in s.read_rows(h)] for h in handles]
        for s in sealed
    ]
    digests = [
        sorted((k, sorted(v)) for k, v in s.digest_sets.items())
        for s in sealed
    ]
    report = service.last_shard_report
    pool = getattr(controller, "_shard_pool", None)
    seals = pool.seals if pool is not None else None
    controller.close_shard_pool()
    return rows, digests, report, seals, len(sealed)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_persistent_epochs_bit_identical_to_ephemeral(workers):
    trace = zipf_trace(num_flows=500, num_packets=8000, seed=61)
    epoch_packets = len(trace) // NUM_EPOCHS

    e_rows, e_digests, e_report, _, e_n = _run_stream(
        trace, epoch_packets, "ephemeral", workers
    )
    p_rows, p_digests, p_report, p_seals, p_n = _run_stream(
        trace, epoch_packets, "persistent", workers
    )
    assert e_n == p_n >= 20
    if workers > 1:  # workers=1 takes the in-process batched path
        assert e_report.runtime == "ephemeral"
        assert p_report.runtime == "persistent"
        assert p_report.degraded is None
        # Every rotation sealed the pool in place -- never a teardown.
        assert p_seals == p_n
    assert e_rows == p_rows
    assert e_digests == p_digests


def test_rotation_reuses_the_pool():
    """After the first window the resident replicas never rebuild: every
    later report must show build_ms == 0 on all shards."""
    trace = zipf_trace(num_flows=400, num_packets=6000, seed=62)
    controller = FlyMonController(num_groups=3)
    _deploy(controller)
    service = MeasurementService(
        controller,
        epoch_packets=len(trace) // NUM_EPOCHS,
        retain=NUM_EPOCHS + 2,
        workers=2,
        runtime="persistent",
    )
    try:
        first = None
        for start in range(0, len(trace), 1500):
            piece = Trace(
                {
                    f: trace.columns[f][start : start + 1500]
                    for f in PACKET_FIELDS
                }
            )
            service.ingest(piece)
            if first is None:
                first = controller._shard_pool
            else:
                assert controller._shard_pool is first
            report = service.last_shard_report
            if start > 0 and report is not None:
                assert all(
                    t["build_ms"] == 0.0 for t in report.shard_timings
                )
    finally:
        controller.close_shard_pool()


def _serve_checkpoint(tmp_path, runtime, name):
    path = tmp_path / name
    argv = [
        "serve",
        "--generator", "zipf",
        "--packets", "6000",
        "--flows", "400",
        "--seed", "33",
        "--epoch-size", "1000",
        "--workers", "2",
        "--tasks", "hh,card",
        "--checkpoint", str(path),
    ]
    if runtime is not None:
        argv += ["--shard-runtime", runtime]
    try:
        assert main(argv) == 0
    finally:
        # main() publishes --shard-runtime via the environment for the
        # layers below; scrub it so later tests see a clean slate.
        os.environ.pop("FLYMON_SHARD_RUNTIME", None)
    with open(path) as fh:
        return json.load(fh)


def test_checkpoint_restore_parity_across_runtimes(tmp_path, capsys):
    """Satellite regression: `repro serve --checkpoint` under the
    persistent runtime restores and answers queries identically to the
    ephemeral artifact."""
    eph = load_service_state(
        _serve_checkpoint(tmp_path, "ephemeral", "eph.json")
    )
    per = load_service_state(
        _serve_checkpoint(tmp_path, "persistent", "per.json")
    )
    capsys.readouterr()

    assert len(per.epochs) == len(eph.epochs)
    e_hh, e_card = eph.tasks
    p_hh, p_card = per.tasks
    trace = zipf_trace(num_flows=400, num_packets=6000, seed=33)
    flows = sorted(trace.flow_sizes(KEY_SRC_IP))[:10]
    for e_epoch, p_epoch in zip(eph.epochs, per.epochs):
        assert p_epoch.index == e_epoch.index
        assert p_epoch.packets == e_epoch.packets
        for flow in flows:
            assert per.query(
                FrequencyQuery(p_hh, flow), epoch=p_epoch
            ) == eph.query(FrequencyQuery(e_hh, flow), epoch=e_epoch)
        assert per.query(
            CardinalityQuery(p_card), epoch=p_epoch
        ) == eph.query(CardinalityQuery(e_card), epoch=e_epoch)
