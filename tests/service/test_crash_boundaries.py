"""Crash-at-every-boundary: SIGKILL at injected storage fault points.

``FLYMON_FAULTS`` arms a crash (``kill``) or a torn write followed by a
crash (``torn``) at each WAL boundary the segmented layout introduces:
mid-seal append, mid-roll (after the new segment file exists but before
its base), and mid-compaction (half the new base line durable).  Each
crashed run must recover bit-identically -- per epoch index -- to one
uninterrupted reference run of the same stream.  This is the PR 9
acceptance criterion for the roll/compaction fault window.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import recover_service_artifact

REPO = Path(__file__).resolve().parents[2]

SERVE_ARGS = [
    "serve",
    "--generator", "zipf",
    "--packets", "60000",
    "--flows", "1000",
    "--seed", "78",
    "--epoch-size", "2000",
    "--chunk", "2000",
    "--retain", "64",
    "--tasks", "hh,card",
    "--threshold", "80",
    "--watch-fill", "0.0",
]

# (fault spec, nickname) -- each lands the crash at a distinct boundary.
CRASH_POINTS = [
    ("wal_append@14=kill", "mid-seal-kill"),
    ("wal_append@14=torn", "mid-seal-torn"),
    ("wal_roll@2=kill", "mid-roll-kill"),
    ("wal_roll@2=torn", "mid-compaction-torn"),
]


def _cli_env(faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    env.pop("FLYMON_FAULTS", None)
    if faults:
        env["FLYMON_FAULTS"] = faults
    return env


def _strip_timing(artifact):
    epochs = []
    for entry in artifact["epochs"]:
        entry = dict(entry)
        entry.pop("seal_ms", None)
        epochs.append(entry)
    return epochs


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted run of the stream, shared by every crash case."""
    path = tmp_path_factory.mktemp("reference") / "ref.json"
    subprocess.run(
        [sys.executable, "-m", "repro.cli", *SERVE_ARGS,
         "--checkpoint", str(path)],
        env=_cli_env(), cwd=str(path.parent), check=True,
        stdout=subprocess.DEVNULL, timeout=300,
    )
    return json.loads(path.read_text())


class TestCrashBoundaries:
    @pytest.mark.parametrize(
        "faults,nickname", CRASH_POINTS, ids=[n for _, n in CRASH_POINTS]
    )
    def test_sigkill_at_boundary_recovers_bit_identically(
        self, tmp_path, reference, faults, nickname
    ):
        wal_dir = tmp_path / "seg"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *SERVE_ARGS,
             "--wal", str(wal_dir), "--wal-segment-seals", "4"],
            env=_cli_env(faults=faults), cwd=str(tmp_path),
            stdout=subprocess.DEVNULL,
        )
        try:
            proc.wait(timeout=300)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=60)
        # The armed fault SIGKILLs the process from inside the write path:
        # no atexit, no flush, no close -- the on-disk state is whatever
        # fsync made durable before the boundary.
        assert proc.returncode == -signal.SIGKILL, (
            f"{nickname}: expected the injected crash, got "
            f"returncode {proc.returncode}"
        )

        recovered = recover_service_artifact(str(wal_dir))
        epochs = _strip_timing(recovered)
        assert epochs, f"{nickname}: recovered no epochs"
        by_index = {e["index"]: e for e in _strip_timing(reference)}
        for entry in epochs:
            assert entry == by_index[entry["index"]], (
                f"{nickname}: epoch {entry['index']} diverged from the "
                "uninterrupted reference"
            )
        # Placement parity too: the replayed control history deploys tasks
        # exactly where the reference run's controller did.
        assert [t["placement"] for t in recovered["tasks"]] == [
            t["placement"] for t in reference["tasks"]
        ]

    def test_reference_covers_crash_window(self, reference):
        # Sanity for the fixture itself: the reference retained every epoch
        # the crashed runs could possibly seal before their boundary.
        assert len(reference["epochs"]) >= 14
