"""Lock-free sealed queries: differential pins and concurrent bit-identity.

The sealed-query path resolves estimators on detached bindings over a
:class:`SealedEpoch`'s immutable cell arrays.  Two properties anchor it:

* **Differential pin** -- answers must be bit-identical to the legacy
  overlay mechanism (swap sealed cells into the live registers, ask the
  live algorithm, restore), re-implemented inline here now that the
  engine no longer ships it.
* **Concurrent bit-identity** -- N threads resolving sealed queries while
  the main thread keeps ingesting must see exactly the single-threaded
  answers: sealed resolution never touches live registers, so ingestion
  cannot perturb it and it cannot perturb ingestion.
"""

import threading
from contextlib import contextmanager

import numpy as np
import pytest

from repro.service import (
    CardinalityQuery,
    EntropyQuery,
    ExistenceQuery,
    FrequencyQuery,
    HeavyHitterQuery,
    InterArrivalQuery,
    MeasurementService,
    resolve,
)
from repro.traffic import zipf_trace

from service_tasks import bloom_task, freq_task, hll_task, mrac_task


@contextmanager
def legacy_overlay(sealed):
    """The deleted ``SealedEpoch.overlay()``: swap sealed cells into the
    live registers, yield, restore.  Kept here as the differential oracle
    for detached resolution (single-threaded use only, by construction)."""
    saved = {
        key: register.snapshot_cells()
        for key, register in sealed._registers.items()
    }
    try:
        for key, register in sealed._registers.items():
            register.load_cells(sealed._cells[key])
        yield
    finally:
        for key, register in sealed._registers.items():
            register.load_cells(saved[key])


def _flows(trace, count=24):
    src = trace.columns["src_ip"]
    unique, counts = np.unique(src, return_counts=True)
    top = unique[np.argsort(counts)][::-1][:count]
    return [(int(v),) for v in top]


class TestDifferentialPin:
    @pytest.fixture
    def setup(self, controller):
        cms = controller.add_task(freq_task(threshold=60))
        hll = controller.add_task(hll_task())
        mrac = controller.add_task(mrac_task())
        bloom = controller.add_task(bloom_task())
        service = MeasurementService(controller, epoch_packets=4000)
        trace = zipf_trace(num_flows=600, num_packets=8000, seed=55)
        epochs = service.ingest(trace)
        assert len(epochs) == 2
        return service, epochs, (cms, hll, mrac, bloom), _flows(trace)

    def test_detached_matches_overlay_bit_for_bit(self, setup):
        service, epochs, (cms, hll, mrac, bloom), flows = setup
        queries = (
            [FrequencyQuery(cms, flow) for flow in flows]
            + [ExistenceQuery(bloom, flow) for flow in flows]
            + [
                HeavyHitterQuery(cms, candidates=tuple(flows), threshold=60),
                HeavyHitterQuery(cms),  # digest path
                CardinalityQuery(hll),
                CardinalityQuery(mrac),
                EntropyQuery(mrac),
            ]
        )
        for sealed in epochs:
            for query in queries:
                detached = resolve(query, sealed)
                with legacy_overlay(sealed):
                    # The oracle asks the *live* algorithm while the sealed
                    # cells are swapped in -- the exact pre-refactor path.
                    handle = query.handle()
                    if isinstance(query, HeavyHitterQuery) and query.candidates is None:
                        expected = detached  # digests never lived in registers
                    else:
                        from repro.service.queries import _resolve

                        expected = _resolve(
                            query, handle, handle.algorithm, sealed=sealed
                        )
                assert detached == expected, query

    def test_overlay_oracle_is_not_a_tautology(self, setup):
        # The oracle must actually read the live registers: with the sealed
        # cells NOT overlaid, the post-seal (reset) registers answer 0.
        service, epochs, (cms, _, _, _), flows = setup
        live = resolve(FrequencyQuery(cms, flows[0]))
        sealed = resolve(FrequencyQuery(cms, flows[0]), epochs[0])
        # The registers were reset at the seal: the live answer for the
        # hottest flow is (near) zero while the sealed answer is large.
        assert sealed > live


class TestConcurrentBitIdentity:
    def test_querier_threads_match_single_threaded_answers(self, controller):
        cms = controller.add_task(freq_task(threshold=60))
        hll = controller.add_task(hll_task())
        service = MeasurementService(controller, epoch_packets=2000, retain=64)
        warmup = zipf_trace(num_flows=500, num_packets=4000, seed=56)
        epochs = service.ingest(warmup)
        flows = _flows(warmup, count=16)
        queries = (
            [FrequencyQuery(cms, flow) for flow in flows]
            + [CardinalityQuery(hll), HeavyHitterQuery(cms)]
        )
        # Single-threaded reference answers, computed up front.
        expected = {
            (sealed.index, qi): resolve(query, sealed)
            for sealed in epochs
            for qi, query in enumerate(queries)
        }

        errors = []
        stop = threading.Event()

        def querier(rounds=50):
            try:
                while not stop.is_set() and rounds:
                    rounds -= 1
                    for sealed in epochs:
                        for qi, query in enumerate(queries):
                            got = resolve(query, sealed)
                            want = expected[(sealed.index, qi)]
                            if got != want:
                                errors.append(
                                    (sealed.index, query, got, want)
                                )
                                return
            except Exception as exc:  # noqa: BLE001 - surface in main thread
                errors.append(exc)

        threads = [threading.Thread(target=querier) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            # Keep ingesting (and sealing) while the queriers hammer the
            # already-sealed epochs.
            for seed in range(57, 63):
                service.ingest(
                    zipf_trace(num_flows=500, num_packets=4000, seed=seed)
                )
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors, errors[:3]
        # And the reference epochs still answer identically afterwards.
        for (index, qi), want in expected.items():
            sealed = next(s for s in epochs if s.index == index)
            assert resolve(queries[qi], sealed) == want


class TestWallClockRotation:
    def test_background_sealer_rotates_while_ingesting(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_wall_ms=15, retain=256)
        service.start()
        try:
            import time

            trace = zipf_trace(num_flows=200, num_packets=6000, seed=58)
            total = 0
            for _ in range(4):
                service.ingest(trace)
                total += len(trace)
                time.sleep(0.03)  # let the sealer tick mid-stream
        finally:
            service.stop(seal_tail=True)
        stats = service.stats()
        assert stats["packets_total"] == total
        # Sealed epochs conserve every packet (no loss, no double count).
        assert sum(s.packets for s in service.epochs) == total
        assert stats["epoch"] >= 2  # the sealer actually ticked mid-stream
        # Idle ticks after stop+drain sealed nothing extra.
        assert all(s.packets > 0 for s in service.epochs)

    def test_start_requires_wall_mode_and_stop_is_idempotent(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=100)
        with pytest.raises(ValueError):
            service.start()
        wall = MeasurementService(controller, epoch_wall_ms=10)
        wall.start()
        with pytest.raises(RuntimeError):
            wall.start()
        wall.stop()
        wall.stop()  # no-op
        wall.start()  # restartable
        wall.stop()

    def test_wall_mode_excludes_other_rotation(self, controller):
        with pytest.raises(ValueError, match="epoch_wall_ms"):
            MeasurementService(
                controller, epoch_packets=100, epoch_wall_ms=10
            )
