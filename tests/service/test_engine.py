"""Unit tests for the streaming epoch engine (MeasurementService)."""

import numpy as np
import pytest

from repro.core.controller import FlyMonController
from repro.service import (
    CardinalityQuery,
    FrequencyQuery,
    MeasurementService,
    StaleEpochError,
)
from repro.traffic import zipf_trace
from repro.traffic.packet import PACKET_FIELDS
from repro.traffic.trace import Trace

from service_tasks import freq_task, hll_task


def _rows(sealed, handle):
    return [values.tolist() for values in sealed.read_rows(handle)]


class TestRotation:
    def test_packet_count_rotation(self, controller):
        handle = controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=1000)
        trace = zipf_trace(num_flows=300, num_packets=5000, seed=1)
        sealed = service.ingest(trace)
        full, tail = divmod(len(trace), 1000)
        assert [s.index for s in sealed] == list(range(full))
        assert all(s.packets == 1000 for s in sealed)
        if tail:
            last = service.rotate()
            assert last.packets == tail
        assert service.stats()["packets_total"] == len(trace)
        assert handle.task_id in sealed[0].task_ids

    def test_chunked_ingest_matches_bulk(self, controller):
        handle = controller.add_task(freq_task())
        trace = zipf_trace(num_flows=300, num_packets=4000, seed=2)

        bulk = MeasurementService(controller, epoch_packets=700)
        sealed_bulk = bulk.ingest(trace)
        bulk_rows = [_rows(s, handle) for s in sealed_bulk]
        bulk.rotate()  # drop the tail so the second run starts clean

        chunked = MeasurementService(controller, epoch_packets=700)
        sealed_chunked = []
        for start in range(0, len(trace), 333):
            piece = Trace(
                {f: trace.columns[f][start : start + 333] for f in PACKET_FIELDS}
            )
            sealed_chunked.extend(chunked.ingest(piece))
        assert [s.packets for s in sealed_chunked] == [
            s.packets for s in sealed_bulk
        ]
        assert [_rows(s, handle) for s in sealed_chunked] == bulk_rows

    def test_duration_rotation(self, controller):
        controller.add_task(freq_task())
        trace = zipf_trace(num_flows=200, num_packets=3000, seed=3).sorted_by_time()
        duration = trace.duration_us // 5
        service = MeasurementService(
            controller, epoch_duration_us=duration, retain=32
        )
        sealed = service.ingest(trace)
        service.rotate()
        ts = trace.columns["timestamp"]
        start = int(ts[0])
        for s in sealed:
            end = start + duration
            expected = int(
                np.count_nonzero((ts >= start) & (ts < end))
            )
            assert s.packets == expected
            start = end
        assert sum(s.packets for s in service.epochs) == len(trace)

    def test_duration_gap_seals_at_most_one_empty_epoch(self, controller):
        # A multi-hour trace gap must NOT spin one empty seal (watchers,
        # series, ring churn) per epoch_duration_us step: exactly one empty
        # epoch marks the discontinuity, then the grid fast-forwards to the
        # step holding the next packet.
        controller.add_task(freq_task())
        trace = zipf_trace(num_flows=100, num_packets=2000, seed=3).sorted_by_time()
        ts = trace.columns["timestamp"].copy()
        gap_at = len(ts) // 2
        duration = int(ts[gap_at - 1] - ts[0]) + 1  # pre-gap half = 1 epoch
        ts[gap_at:] += 10_000 * duration  # a 10k-epoch-wide hole
        gapped = Trace({**trace.columns, "timestamp": ts})
        service = MeasurementService(
            controller, epoch_duration_us=duration, retain=32
        )
        service.ingest(gapped)
        service.rotate()
        empties = [s for s in service.epochs if s.packets == 0]
        assert len(empties) == 1
        assert len(service.epochs) <= 4  # pre-gap, marker, post-gap (+tail)
        assert sum(s.packets for s in service.epochs) == len(gapped)
        # The first post-gap epoch starts with the first post-gap packet.
        post = next(
            s for s in service.epochs if s.packets and s.index > empties[0].index
        )
        assert post.start_ts == int(ts[gap_at])

    def test_manual_rotation_only_on_rotate(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller)
        trace = zipf_trace(num_flows=100, num_packets=2000, seed=4)
        assert service.ingest(trace) == []
        sealed = service.rotate()
        assert sealed.packets == len(trace)

    def test_rotation_mode_validation(self, controller):
        with pytest.raises(ValueError):
            MeasurementService(controller, epoch_packets=10, epoch_duration_us=10)
        with pytest.raises(ValueError):
            MeasurementService(controller, epoch_packets=0)
        with pytest.raises(ValueError):
            MeasurementService(controller, epoch_duration_us=-5)
        with pytest.raises(ValueError):
            MeasurementService(controller, retain=0)


class TestSealing:
    def test_seal_resets_all_deployments_by_default(self, controller):
        h1 = controller.add_task(freq_task())
        h2 = controller.add_task(hll_task())
        service = MeasurementService(controller)
        service.ingest(zipf_trace(num_flows=100, num_packets=500, seed=5))
        service.rotate()
        for handle in (h1, h2):
            assert all(row.read().sum() == 0 for row in handle.rows)

    def test_narrowed_reset_leaves_other_tasks(self, controller):
        h1 = controller.add_task(freq_task())
        h2 = controller.add_task(hll_task())
        service = MeasurementService(controller)
        service.ingest(zipf_trace(num_flows=100, num_packets=500, seed=5))
        service.rotate(reset_handles=[h1])
        assert all(row.read().sum() == 0 for row in h1.rows)
        assert any(row.read().sum() != 0 for row in h2.rows)

    def test_sealed_rows_match_pre_seal_registers(self, controller):
        handle = controller.add_task(freq_task())
        service = MeasurementService(controller)
        service.ingest(zipf_trace(num_flows=100, num_packets=800, seed=6))
        live = [row.read().tolist() for row in handle.rows]
        sealed = service.rotate()
        assert _rows(sealed, handle) == live

    def test_sealed_epoch_survives_reset_and_new_traffic(self, controller):
        handle = controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=1000)
        trace = zipf_trace(num_flows=200, num_packets=2000, seed=7)
        sealed = service.ingest(trace)
        first = _rows(sealed[0], handle)
        # More traffic and another seal must not disturb epoch 0's snapshot.
        service.ingest(zipf_trace(num_flows=200, num_packets=1000, seed=8))
        assert _rows(sealed[0], handle) == first

    def test_stale_task_raises(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller)
        service.ingest(zipf_trace(num_flows=50, num_packets=200, seed=9))
        sealed = service.rotate()
        late = controller.add_task(hll_task())
        with pytest.raises(StaleEpochError):
            sealed.read_rows(late)
        with pytest.raises(StaleEpochError):
            service.query(CardinalityQuery(late), epoch=sealed)

    def test_sealed_resolution_never_touches_live_registers(self, controller):
        """Sealed queries run on detached bindings: resolving them must not
        read back different values nor mutate the live registers (the
        overlay mechanism this replaced swapped sealed cells into the live
        registers, corrupting concurrent ingest)."""
        handle = controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=500)
        trace = zipf_trace(num_flows=100, num_packets=1000, seed=10)
        sealed = service.ingest(trace)[0]
        live_before = [row.read().tolist() for row in handle.rows]
        flow = max(
            trace.flow_sizes(freq_task().key).items(), key=lambda kv: kv[1]
        )[0]
        assert service.query(FrequencyQuery(handle, flow), epoch=sealed) > 0
        algo = sealed.bind(handle)
        assert [row.read().tolist() for row in algo.rows] == _rows(
            sealed, handle
        )
        assert [row.read().tolist() for row in handle.rows] == live_before

    def test_sealed_rows_are_immutable(self, controller):
        handle = controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=500)
        sealed = service.ingest(
            zipf_trace(num_flows=100, num_packets=1000, seed=10)
        )[0]
        with pytest.raises(TypeError):
            sealed.bind(handle).rows[0].reset()


class TestRetention:
    def test_ring_bounds_history(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=100, retain=3)
        service.ingest(zipf_trace(num_flows=50, num_packets=1000, seed=11))
        retained = [s.index for s in service.epochs]
        assert len(retained) == 3
        assert retained == sorted(retained)
        assert service.latest.index == retained[-1]
        assert service.epoch(retained[0]).index == retained[0]
        with pytest.raises(StaleEpochError):
            service.epoch(0)

    def test_series_over_ring(self, controller):
        handle = controller.add_task(hll_task())
        service = MeasurementService(controller, epoch_packets=500, retain=4)
        service.register_series("card", CardinalityQuery(handle))
        service.ingest(zipf_trace(num_flows=300, num_packets=3000, seed=12))
        series = service.series("card")
        assert [index for index, _ in series] == [
            s.index for s in service.epochs
        ]
        assert all(value > 0 for _, value in series)
        with pytest.raises(ValueError):
            service.register_series("card", CardinalityQuery(handle))
        with pytest.raises(KeyError):
            service.series("nope")


class TestSinglePacketIngest:
    def test_buffered_packets_match_bulk(self):
        trace = zipf_trace(num_flows=100, num_packets=1500, seed=13)

        bulk_ctrl = FlyMonController(num_groups=1)
        bulk_handle = bulk_ctrl.add_task(freq_task())
        bulk = MeasurementService(bulk_ctrl, epoch_packets=400)
        sealed_bulk = bulk.ingest(trace)

        pkt_ctrl = FlyMonController(num_groups=1)
        pkt_handle = pkt_ctrl.add_task(freq_task())
        by_packet = MeasurementService(
            pkt_ctrl, epoch_packets=400, batch_size=64
        )
        sealed_pkt = []
        for fields in trace.iter_fields():
            sealed_pkt.extend(by_packet.ingest_packet(fields))
        sealed_pkt.extend(by_packet.flush())

        assert [s.packets for s in sealed_pkt] == [
            s.packets for s in sealed_bulk
        ]
        assert [_rows(s, pkt_handle) for s in sealed_pkt] == [
            _rows(s, bulk_handle) for s in sealed_bulk
        ]

    def test_packet_rotation_is_not_deferred_past_boundary(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=10, batch_size=1000)
        trace = zipf_trace(num_flows=10, num_packets=25, seed=14)
        sealed = []
        for fields in trace.iter_fields():
            sealed.extend(service.ingest_packet(fields))
        assert [s.packets for s in sealed] == [10, 10]

    def test_ingest_batch(self, controller):
        handle = controller.add_task(freq_task())
        trace = zipf_trace(num_flows=50, num_packets=600, seed=15)
        service = MeasurementService(controller, epoch_packets=600)
        sealed = service.ingest_batch(trace.as_batch())
        assert len(sealed) == 1
        assert sealed[0].packets == len(trace)
        assert any(sum(r) for r in _rows(sealed[0], handle))


class TestFastPathParity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_batched_and_sharded_match_scalar(self, workers):
        trace = zipf_trace(num_flows=200, num_packets=3000, seed=16)

        def run(batch_size, workers):
            controller = FlyMonController(num_groups=1)
            handle = controller.add_task(freq_task())
            service = MeasurementService(
                controller,
                epoch_packets=800,
                batch_size=batch_size,
                workers=workers,
            )
            sealed = service.ingest(trace)
            sealed.append(service.rotate())
            return [_rows(s, handle) for s in sealed]

        scalar = run(batch_size=0, workers=1)
        fast = run(batch_size=256, workers=workers)
        assert fast == scalar


class TestStats:
    def test_stats_shape(self, controller):
        controller.add_task(freq_task())
        trace = zipf_trace(num_flows=50, num_packets=1000, seed=17)
        service = MeasurementService(controller, epoch_packets=300, retain=2)
        service.ingest(trace)
        stats = service.stats()
        assert stats["epoch"] == len(trace) // 300
        assert stats["sealed_epochs"] == 2
        assert stats["packets_total"] == len(trace)
        assert stats["epoch_fill"] == len(trace) % 300
        assert stats["epoch_packets"] == 300
        assert stats["workers"] == 1

    def test_empty_ingest(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=10)
        assert service.ingest(Trace.empty()) == []

    def test_stats_flight_recorder_fields(self, controller):
        controller.add_task(freq_task())
        trace = zipf_trace(num_flows=50, num_packets=1000, seed=18)
        service = MeasurementService(controller, epoch_packets=300)
        service.ingest(trace)
        stats = service.stats()
        assert stats["ingest_ms_total"] > 0.0
        assert stats["last_seal_ms"] is not None
        assert stats["last_seal_ms"] >= 0.0
        assert stats["watchers_fired"] == 0

    def test_last_seal_ms_none_before_first_epoch(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=10_000)
        assert service.stats()["last_seal_ms"] is None


class TestSealTelemetry:
    def test_seal_histogram_uses_ms_buckets(self, controller):
        """flymon_epoch_seal_ms observes milliseconds, so it must be created
        with DEFAULT_MS_BUCKETS -- the seconds buckets shoved every seal into
        the top bucket (the PR-1 regression this guards against)."""
        from repro import telemetry
        from repro.telemetry import DEFAULT_MS_BUCKETS

        controller.add_task(freq_task())
        trace = zipf_trace(num_flows=50, num_packets=900, seed=19)
        telemetry.reset()
        telemetry.enable()
        try:
            service = MeasurementService(controller, epoch_packets=300)
            service.ingest(trace)
            hist = telemetry.TELEMETRY.registry.get("flymon_epoch_seal_ms")
            assert hist is not None
            assert hist.bounds == DEFAULT_MS_BUCKETS
            assert hist.count == 3
        finally:
            telemetry.disable()
            telemetry.reset()


class TestFlightRecorder:
    def test_ingest_and_rotation_spans(self, controller):
        from repro.telemetry import RECORDER, disable_recorder, enable_recorder

        controller.add_task(freq_task())
        trace = zipf_trace(num_flows=50, num_packets=900, seed=20)
        RECORDER.clear()
        enable_recorder()
        try:
            service = MeasurementService(controller, epoch_packets=300)
            service.ingest(trace)
            spans = RECORDER.spans
        finally:
            disable_recorder()
            RECORDER.clear()
        names = [s.name for s in spans]
        assert names.count("service.rotate") == 3
        assert "service.ingest" in names
        by_id = {s.span_id: s for s in spans}
        rotate_ids = {s.span_id for s in spans if s.name == "service.rotate"}
        for child in ("rotate.snapshot", "rotate.digests", "rotate.reset",
                      "rotate.series", "rotate.watchers"):
            members = [s for s in spans if s.name == child]
            assert len(members) == 3, f"{child}: {names}"
            assert all(s.parent_id in rotate_ids for s in members)
        # Rotation spans carry the epoch index and packet count.
        epochs = sorted(
            s.attrs["epoch"] for s in spans if s.name == "service.rotate"
        )
        assert epochs == [0, 1, 2]
        assert all(
            s.attrs["packets"] == 300
            for s in spans
            if s.name == "service.rotate"
        )
        assert by_id  # parent links all resolve within the ring

    def test_recorder_off_records_nothing(self, controller):
        from repro.telemetry import RECORDER, disable_recorder

        disable_recorder()
        RECORDER.clear()
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=300)
        service.ingest(zipf_trace(num_flows=50, num_packets=900, seed=21))
        assert RECORDER.spans == []
