"""Streaming vs one-shot differential: every sealed epoch must be
bit-identical to an independent replay of just that window on a fresh
controller -- across >= 20 epochs and on both the batched and sharded
ingestion paths."""

import pytest

from repro.core.controller import FlyMonController
from repro.service import (
    CardinalityQuery,
    FrequencyQuery,
    MeasurementService,
    resolve,
)
from repro.traffic import zipf_trace
from repro.traffic.packet import PACKET_FIELDS
from repro.traffic.trace import Trace

from service_tasks import bloom_task, freq_task, hll_task

NUM_EPOCHS = 21


def deploy(controller):
    """The fixed task mix, always added in the same order."""
    return [
        controller.add_task(freq_task()),
        controller.add_task(hll_task()),
        controller.add_task(bloom_task()),
    ]


def window(trace, start, count):
    return Trace(
        {f: trace.columns[f][start : start + count] for f in PACKET_FIELDS}
    )


@pytest.mark.parametrize("workers", [1, 2])
def test_sealed_epochs_match_one_shot_replays(workers):
    trace = zipf_trace(num_flows=500, num_packets=8000, seed=61)
    epoch_packets = len(trace) // NUM_EPOCHS

    controller = FlyMonController(num_groups=3)
    handles = deploy(controller)
    service = MeasurementService(
        controller,
        epoch_packets=epoch_packets,
        retain=NUM_EPOCHS + 2,
        workers=workers,
    )
    sealed = service.ingest(trace)
    assert len(sealed) >= 20

    probe_flows = sorted(trace.flow_sizes(handles[0].task.key))[:8]
    for epoch in sealed:
        replay_ctrl = FlyMonController(num_groups=3)
        replay_handles = deploy(replay_ctrl)
        replay_ctrl.process_trace(
            window(trace, epoch.index * epoch_packets, epoch_packets)
        )

        # Raw register state, row for row.
        for handle, replay_handle in zip(handles, replay_handles):
            sealed_rows = [v.tolist() for v in epoch.read_rows(handle)]
            replay_rows = [r.read().tolist() for r in replay_handle.rows]
            assert sealed_rows == replay_rows, (
                f"epoch {epoch.index}, task {handle.algorithm_name}: "
                "sealed registers differ from a one-shot replay"
            )

        # Typed query answers resolved through the sealed overlay.
        for flow in probe_flows:
            assert resolve(FrequencyQuery(handles[0], flow), epoch) == (
                replay_handles[0].algorithm.query(flow)
            )
        assert resolve(CardinalityQuery(handles[1]), epoch) == (
            replay_handles[1].algorithm.estimate()
        )


def test_worker_counts_agree_epoch_by_epoch():
    trace = zipf_trace(num_flows=400, num_packets=6000, seed=62)
    epoch_packets = len(trace) // NUM_EPOCHS

    def run(workers):
        controller = FlyMonController(num_groups=3)
        handles = deploy(controller)
        service = MeasurementService(
            controller,
            epoch_packets=epoch_packets,
            retain=NUM_EPOCHS + 2,
            workers=workers,
        )
        sealed = service.ingest(trace)
        return [
            [[v.tolist() for v in s.read_rows(h)] for h in handles]
            for s in sealed
        ]

    assert run(1) == run(2)
