"""Ingest overload protection, sealer supervision, and the health surface.

``max_stall_ms`` bounds how long ingest queues behind a stuck seal: a
window that cannot take the lock in time is shed whole, with exact
``dropped_packets`` / ``dropped_windows`` accounting (shed traffic never
touches the registers, so sealed state stays exact for what *was*
ingested).  The wall-clock sealer runs under a watchdog that restarts a
dead thread within a capped budget and counts missed deadlines.  All of
it surfaces through :meth:`MeasurementService.health`.
"""

import threading
import time

from repro.faults import FAULTS, SITE_WAL_FSYNC
from repro.service import MeasurementService, ServiceWal
from repro.traffic import zipf_trace

from service_tasks import freq_task


def _wait_for(predicate, timeout_s=10.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestHealthBaseline:
    def test_fresh_service_is_ok(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=500, retain=4)
        service.ingest(zipf_trace(num_flows=50, num_packets=1200, seed=1))
        health = service.health()
        assert health["status"] == "ok"
        assert health["reasons"] == []
        assert health["dropped_packets"] == 0
        assert health["wal_state"] is None
        assert health["sealed_epochs"] == len(service.epochs)

    def test_stats_expose_robustness_counters(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=500, retain=4)
        stats = service.stats()
        for key in (
            "dropped_packets",
            "dropped_windows",
            "wal_state",
            "wal_lost_seals",
            "sealer_restarts",
            "sealer_missed_deadlines",
        ):
            assert key in stats

    def test_degraded_wal_surfaces_in_health(self, controller, tmp_path):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=300, retain=4)
        ServiceWal(
            str(tmp_path / "svc.wal"),
            policy="degrade",
            reattach_backoff_s=60.0,
        ).attach(service)
        FAULTS.arm(SITE_WAL_FSYNC, prob=1.0)
        service.ingest(zipf_trace(num_flows=50, num_packets=900, seed=2))
        health = service.health()
        assert health["status"] == "degraded"
        assert health["wal_state"] == "degraded"
        assert any("wal degraded" in r for r in health["reasons"])
        FAULTS.disarm(SITE_WAL_FSYNC)


class TestOverloadShedding:
    def test_stalled_lock_sheds_whole_windows_exactly(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(
            controller,
            epoch_packets=400,
            retain=4,
            batch_size=250,
            max_stall_ms=20,
        )
        held = threading.Event()
        release = threading.Event()

        def hold_lock():
            with service._lock:
                held.set()
                release.wait(10.0)

        trace = zipf_trace(num_flows=50, num_packets=1000, seed=3)
        total = len(trace)
        windows = -(-total // 250)  # ceil: whole windows of batch_size
        blocker = threading.Thread(target=hold_lock, daemon=True)
        blocker.start()
        assert held.wait(5.0)
        try:
            sealed = service.ingest(trace)
        finally:
            release.set()
            blocker.join()

        # Every window was shed whole, in batch_size-packet windows.
        assert sealed == []
        assert service.dropped_packets == total
        assert service.dropped_windows == windows
        # Shed traffic never reached the registers or the packet counters.
        assert service.stats()["packets_total"] == 0
        assert service.epochs == []

        health = service.health()
        assert health["status"] == "degraded"
        assert any(
            f"shed {windows} window(s) ({total} packets)" in r
            for r in health["reasons"]
        )

        # The stall is over: ingest works again and sheds nothing more.
        second = zipf_trace(num_flows=50, num_packets=800, seed=4)
        sealed = service.ingest(second)
        assert len(sealed) == len(second) // 400
        assert service.dropped_packets == total
        assert service.stats()["packets_total"] == len(second)

    def test_no_stall_bound_means_no_shedding(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(controller, epoch_packets=400, retain=4)
        service.ingest(zipf_trace(num_flows=50, num_packets=1000, seed=3))
        assert service.dropped_packets == 0
        assert service.dropped_windows == 0


class TestSealerSupervision:
    def _crashing_seal(self, service):
        def boom(*args, **kwargs):
            raise RuntimeError("injected seal crash")

        service._seal = boom

    def test_watchdog_restarts_dead_sealer(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(
            controller,
            epoch_wall_ms=15,
            retain=4,
            sealer_restart_budget=50,
        )
        original_seal = service._seal
        self._crashing_seal(service)
        service.start()
        try:
            service.ingest(zipf_trace(num_flows=50, num_packets=400, seed=5))
            assert _wait_for(lambda: service.sealer_restarts >= 1)
            # Heal the seal path: the restarted sealer drains the window.
            service._seal = original_seal
            assert _wait_for(lambda: len(service.epochs) >= 1)
            health = service.health()
            assert health["status"] == "degraded"
            assert any("sealer restarted" in r for r in health["reasons"])
            assert health["sealer_alive"] is True
        finally:
            service._seal = original_seal
            service.stop(seal_tail=False)

    def test_restart_budget_exhaustion_is_failing(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(
            controller,
            epoch_wall_ms=15,
            retain=4,
            sealer_restart_budget=1,
        )
        original_seal = service._seal
        self._crashing_seal(service)
        service.start()
        try:
            service.ingest(zipf_trace(num_flows=50, num_packets=400, seed=6))
            assert _wait_for(
                lambda: any(
                    "sealer dead after 1 restart" in r
                    for r in service.health()["reasons"]
                )
            )
            assert service.health()["status"] == "failing"
            assert service.sealer_restarts == 1
        finally:
            service._seal = original_seal
            service.stop(seal_tail=False)

    def test_missed_deadlines_counted_once_per_stall(self, controller):
        controller.add_task(freq_task())
        service = MeasurementService(
            controller, epoch_wall_ms=20, retain=4
        )
        service.start()
        try:
            # Block the sealer on the service lock well past 3 intervals.
            with service._lock:
                assert _wait_for(
                    lambda: service.sealer_missed_deadlines >= 1,
                    timeout_s=5.0,
                )
                stalled = service.sealer_missed_deadlines
            # One stall episode counts once, not once per watchdog poll.
            assert stalled == 1
            health = service.health()
            assert health["status"] == "degraded"
            assert any("missed" in r for r in health["reasons"])
        finally:
            service.stop(seal_tail=False)
