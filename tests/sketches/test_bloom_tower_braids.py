"""Unit tests for Bloom Filter, TowerSketch, and Counter Braids baselines."""

import pytest

from repro.sketches import BloomFilter, CounterBraids, TowerSketch


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(num_bits=4096, num_hashes=3)
        keys = [f"k{i}" for i in range(200)]
        for key in keys:
            bf.add(key)
        assert all(key in bf for key in keys)

    def test_false_positive_rate_matches_theory(self):
        bf = BloomFilter(num_bits=8192, num_hashes=3, seed=7)
        n = 500
        for i in range(n):
            bf.add(("in", i))
        probes = 5000
        fp = sum(1 for i in range(probes) if ("out", i) in bf)
        expected = bf.expected_false_positive_rate(n)
        assert fp / probes < max(4 * expected, 0.02)

    def test_empty_filter_rejects_everything(self):
        bf = BloomFilter(num_bits=64)
        assert "x" not in bf

    def test_fill_fraction(self):
        bf = BloomFilter(num_bits=100, num_hashes=1)
        assert bf.fill_fraction == 0.0
        bf.add("x")
        assert bf.fill_fraction == pytest.approx(0.01)

    def test_memory_bytes(self):
        assert BloomFilter(num_bits=8192).memory_bytes == 1024


class TestTowerSketch:
    def test_small_flows_exact_without_collisions(self):
        tower = TowerSketch(base_width=4096)
        tower.update("mouse")
        tower.update("mouse")
        assert tower.query("mouse") == 2

    def test_saturated_rows_skipped(self):
        tower = TowerSketch(base_width=4096)
        for _ in range(10):
            tower.update("elephant")
        # The 2-bit row saturates at 3; the 8-bit row still counts.
        assert tower.query("elephant") == 10

    def test_all_rows_saturated_reports_cap(self):
        tower = TowerSketch(base_width=256)
        for _ in range(500):
            tower.update("huge")
        assert tower.query("huge") == 255

    def test_memory_is_sum_of_rows(self):
        tower = TowerSketch(base_width=1024)
        # (2 bits x 4096) + (4 bits x 2048) + (8 bits x 1024) = 3072 bytes.
        assert tower.memory_bytes == 3072

    def test_never_underestimates_below_cap(self):
        tower = TowerSketch(base_width=64)
        truth = {}
        for i in range(500):
            key = f"k{i % 40}"
            tower.update(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            if count < 255:
                assert tower.query(key) >= min(count, 255) or tower.query(key) >= count


class TestCounterBraids:
    def test_decode_exact_at_low_load(self):
        cb = CounterBraids(layer1_width=512, layer2_width=128, layer1_bits=4)
        truth = {f"k{i}": (i % 7) + 1 for i in range(60)}
        for key, count in truth.items():
            for _ in range(count):
                cb.update(key)
        decoded = cb.decode(truth.keys())
        exact = sum(1 for k in truth if decoded[k] == truth[k])
        assert exact >= 0.9 * len(truth)

    def test_overflow_carries_to_layer2(self):
        cb = CounterBraids(layer1_width=64, layer2_width=32, layer1_bits=2)
        for _ in range(100):
            cb.update("big")
        assert cb.layer2.sum() > 0
        decoded = cb.decode(["big"])
        assert decoded["big"] >= 50

    def test_total_count_preserved_in_layer1_mod(self):
        cb = CounterBraids(layer1_width=128, layer2_width=64, layer1_bits=4)
        cb.update("x", weight=3)
        assert cb.layer1.sum() == 3 * cb.depth

    def test_memory_accounting(self):
        cb = CounterBraids(layer1_width=1024, layer2_width=256, layer1_bits=4)
        assert cb.memory_bytes == (1024 * 4 + 256 * 32) // 8

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            CounterBraids(layer1_width=0, layer2_width=8)
