"""Unit tests for CMS and SuMax baselines."""

import pytest

from repro.sketches import CountMinSketch, SuMaxMax, SuMaxSum


class TestCountMinSketch:
    def test_exact_without_collisions(self):
        cms = CountMinSketch(width=1024, depth=3)
        for _ in range(5):
            cms.update("flow-a")
        cms.update("flow-b", weight=3)
        assert cms.query("flow-a") == 5
        assert cms.query("flow-b") == 3

    def test_never_underestimates(self):
        cms = CountMinSketch(width=32, depth=3)
        truth = {}
        for i in range(300):
            key = f"k{i % 50}"
            cms.update(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert cms.query(key) >= count

    def test_weighted_updates(self):
        cms = CountMinSketch(width=256, depth=3)
        cms.update("x", weight=10)
        cms.update("x", weight=5)
        assert cms.query("x") == 15

    def test_unseen_key_can_be_zero(self):
        cms = CountMinSketch(width=4096, depth=3)
        cms.update("x")
        assert cms.query("never-seen") >= 0

    def test_memory_accounting(self):
        assert CountMinSketch(width=1024, depth=3).memory_bytes == 3 * 1024 * 4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)

    def test_heavy_hitters(self):
        cms = CountMinSketch(width=2048, depth=3)
        for _ in range(100):
            cms.update("big")
        cms.update("small")
        hh = cms.heavy_hitters(["big", "small"], threshold=50)
        assert hh == {"big"}

    def test_counter_saturation(self):
        cms = CountMinSketch(width=16, depth=1, counter_bits=8)
        for _ in range(300):
            cms.update("x")
        assert cms.query("x") == 255


class TestSuMaxSum:
    def test_exact_without_collisions(self):
        sm = SuMaxSum(width=1024, depth=3)
        for _ in range(7):
            sm.update("a")
        assert sm.query("a") == 7

    def test_never_underestimates(self):
        sm = SuMaxSum(width=32, depth=3)
        truth = {}
        for i in range(300):
            key = f"k{i % 40}"
            sm.update(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sm.query(key) >= count

    def test_no_worse_than_cms_on_shared_workload(self):
        cms = CountMinSketch(width=64, depth=3, seed=0x77)
        sm = SuMaxSum(width=64, depth=3, seed=0x77)
        keys = [f"k{i % 100}" for i in range(2000)]
        for key in keys:
            cms.update(key)
            sm.update(key)
        total_cms = sum(cms.query(f"k{i}") for i in range(100))
        total_sm = sum(sm.query(f"k{i}") for i in range(100))
        assert total_sm <= total_cms


class TestSuMaxMax:
    def test_tracks_maximum(self):
        mx = SuMaxMax(width=512, depth=3)
        mx.update("f", weight=10)
        mx.update("f", weight=50)
        mx.update("f", weight=20)
        assert mx.query("f") == 50

    def test_never_underestimates(self):
        mx = SuMaxMax(width=16, depth=2)
        truth = {}
        for i in range(200):
            key = f"k{i % 30}"
            value = (i * 37) % 1000
            mx.update(key, weight=value)
            truth[key] = max(truth.get(key, 0), value)
        for key, value in truth.items():
            assert mx.query(key) >= value
