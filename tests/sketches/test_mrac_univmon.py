"""Unit tests for MRAC (EM) and UnivMon baselines."""

import math

import pytest

from repro.sketches import Mrac, UnivMon
from repro.sketches.univmon import CountSketch


class TestCountSketch:
    def test_unbiased_point_queries(self):
        cs = CountSketch(width=1024, depth=5)
        for _ in range(50):
            cs.update("a")
        assert abs(cs.query("a") - 50) <= 5

    def test_signed_counters_can_go_negative(self):
        cs = CountSketch(width=4, depth=1)
        for i in range(100):
            cs.update(f"k{i}")
        assert cs.counters.min() <= cs.counters.max()

    def test_memory(self):
        assert CountSketch(width=256, depth=5).memory_bytes == 256 * 5 * 4


class TestMrac:
    def test_counters_partition_packets(self):
        mrac = Mrac(width=64)
        for i in range(500):
            mrac.update(f"k{i % 20}")
        assert mrac.counters.sum() == 500

    def test_distribution_recovers_flow_count(self):
        mrac = Mrac(width=4096)
        num_flows = 800
        for i in range(num_flows):
            for _ in range((i % 3) + 1):
                mrac.update(f"k{i}")
        est_flows = mrac.estimate_flow_count(iterations=20)
        assert abs(est_flows - num_flows) / num_flows < 0.15

    def test_entropy_estimate_close(self):
        mrac = Mrac(width=4096)
        truth_sizes = []
        for i in range(600):
            size = (i % 5) + 1
            truth_sizes.append(size)
            for _ in range(size):
                mrac.update(f"k{i}")
        total = sum(truth_sizes)
        h_true = -sum((s / total) * math.log(s / total) for s in truth_sizes)
        h_est = mrac.estimate_entropy(iterations=20)
        assert abs(h_est - h_true) / h_true < 0.1

    def test_empty_distribution(self):
        assert Mrac(width=16).estimate_distribution() == {}

    def test_large_counters_kept_as_elephants(self):
        mrac = Mrac(width=256)
        mrac.update("elephant", weight=10_000)
        dist = mrac.estimate_distribution(max_size=100)
        assert dist.get(10_000, 0) >= 1


class TestUnivMon:
    def make_populated(self, num_flows=400, seed=0xBB):
        um = UnivMon(width=512, depth=5, levels=10, top_k=64, seed=seed)
        for i in range(num_flows):
            for _ in range((i % 9) + 1):
                um.update(("flow", i))
        return um

    def test_sampling_levels_halve(self):
        um = UnivMon(width=64, levels=8, top_k=1024)
        for i in range(2000):
            um.update(i)
        # Level l receives roughly half of level l-1's distinct keys.
        sizes = [len(level.keys) for level in um.levels[:4]]
        for a, b in zip(sizes, sizes[1:]):
            assert b < a

    def test_cardinality_estimate(self):
        um = self.make_populated()
        est = um.estimate_cardinality()
        assert abs(est - 400) / 400 < 0.6

    def test_entropy_estimate(self):
        um = self.make_populated()
        sizes = [(i % 9) + 1 for i in range(400)]
        total = sum(sizes)
        h_true = -sum((s / total) * math.log(s / total) for s in sizes)
        h_est = um.estimate_entropy()
        assert abs(h_est - h_true) / h_true < 0.35

    def test_heavy_hitters_found(self):
        um = UnivMon(width=1024, depth=5, levels=8, top_k=32)
        for _ in range(500):
            um.update("elephant")
        for i in range(200):
            um.update(("mouse", i))
        assert "elephant" in um.heavy_hitters(threshold=250)

    def test_total_packets_tracked(self):
        um = UnivMon(width=64, levels=4)
        for _ in range(25):
            um.update("x")
        assert um.total_packets == 25
