"""Unit tests for HLL, Linear Counting, and BeauCoup baselines."""

import pytest

from repro.sketches import BeauCoup, HyperLogLog, LinearCounting
from repro.sketches.beaucoup import tune_coupon_probability


class TestHyperLogLog:
    def test_empty_estimate_near_zero(self):
        assert HyperLogLog(precision_bits=8).estimate() < 5

    def test_estimate_within_expected_error(self):
        hll = HyperLogLog(precision_bits=10)
        n = 20_000
        for i in range(n):
            hll.update(i)
        # Standard error ~ 1.04 / sqrt(1024) ~ 3.3%; allow 4 sigma.
        assert abs(hll.estimate() - n) / n < 0.13

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(precision_bits=8)
        for _ in range(10):
            for i in range(100):
                hll.update(i)
        assert hll.estimate() < 200

    def test_small_range_linear_counting_regime(self):
        hll = HyperLogLog(precision_bits=10)
        for i in range(20):
            hll.update(i)
        assert abs(hll.estimate() - 20) <= 3

    def test_merge_equals_union(self):
        a = HyperLogLog(precision_bits=8, seed=1)
        b = HyperLogLog(precision_bits=8, seed=1)
        for i in range(500):
            a.update(i)
        for i in range(250, 750):
            b.update(i)
        a.merge(b)
        assert abs(a.estimate() - 750) / 750 < 0.25

    def test_merge_mismatched_precision_rejected(self):
        with pytest.raises(ValueError):
            HyperLogLog(8).merge(HyperLogLog(9))

    def test_precision_bounds(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision_bits=3)

    def test_memory_bytes(self):
        assert HyperLogLog(precision_bits=10).memory_bytes == 1024


class TestLinearCounting:
    def test_accurate_at_low_load(self):
        lc = LinearCounting(num_bits=8192)
        for i in range(1000):
            lc.update(i)
        assert abs(lc.estimate() - 1000) / 1000 < 0.05

    def test_duplicates_ignored(self):
        lc = LinearCounting(num_bits=1024)
        for _ in range(5):
            for i in range(50):
                lc.update(i)
        assert abs(lc.estimate() - 50) <= 10

    def test_saturation_returns_upper_bound(self):
        lc = LinearCounting(num_bits=16)
        for i in range(10_000):
            lc.update(i)
        assert lc.estimate() > 16


class TestBeauCoup:
    def test_coupon_probability_tuning(self):
        p = tune_coupon_probability(16, 512)
        assert 0 < p <= 1 / 16

    def test_alarm_fires_near_threshold(self):
        bc = BeauCoup(slots=4096, threshold=100, num_coupons=16, seed=3)
        for i in range(1000):
            bc.update("victim", attribute_value=("v", i))
        assert "victim" in bc.alarms()

    def test_no_alarm_for_small_keys(self):
        bc = BeauCoup(slots=4096, threshold=500, num_coupons=16, seed=3)
        for i in range(10):
            bc.update("quiet", attribute_value=("q", i))
        assert "quiet" not in bc.alarms()

    def test_duplicate_values_make_no_progress(self):
        bc = BeauCoup(slots=4096, threshold=50, num_coupons=8, seed=4)
        for _ in range(10_000):
            bc.update("key", attribute_value="same-value")
        assert "key" not in bc.alarms()

    def test_estimate_distinct_monotone(self):
        bc = BeauCoup(slots=8192, threshold=200, num_coupons=16, seed=5)
        checkpoints = []
        for i in range(400):
            bc.update("k", attribute_value=("x", i))
            if i in (50, 150, 350):
                checkpoints.append(bc.estimate_distinct("k"))
        assert checkpoints == sorted(checkpoints)

    def test_depth_reduces_false_alarms(self):
        """With d tables a slot collision in one table cannot alone complete
        a key's coupons."""
        bc = BeauCoup(slots=64, threshold=100, num_coupons=8, depth=3, seed=6)
        for key in range(50):
            for i in range(20):
                bc.update(("small", key), attribute_value=(key, i))
        small_alarms = {k for k in bc.alarms() if k[0] == "small"}
        assert len(small_alarms) <= 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BeauCoup(slots=0, threshold=10)
        with pytest.raises(ValueError):
            BeauCoup(slots=10, threshold=10, num_coupons=64)
