"""Unit tests for the standalone Odd Sketch."""

import pytest

from repro.sketches import OddSketch
from repro.sketches.oddsketch import (
    jaccard_from_difference,
    symmetric_difference_estimate,
)


class TestEstimatorMath:
    def test_zero_bits_means_empty_difference(self):
        assert symmetric_difference_estimate(0, 1024) == 0.0

    def test_saturation_bound(self):
        assert symmetric_difference_estimate(512, 1024) == 1024.0

    def test_monotone_in_odd_bits(self):
        values = [symmetric_difference_estimate(z, 1024) for z in range(0, 500, 50)]
        assert values == sorted(values)

    def test_jaccard_identical_sets(self):
        assert jaccard_from_difference(100, 100, 0) == 1.0

    def test_jaccard_disjoint_sets(self):
        assert jaccard_from_difference(100, 100, 200) == 0.0

    def test_jaccard_half_overlap(self):
        # |A| = |B| = 100, 50 shared -> union 150, intersection 50.
        assert jaccard_from_difference(100, 100, 100) == pytest.approx(1 / 3)


class TestOddSketch:
    def test_size_estimate(self):
        sk = OddSketch(num_bits=8192)
        for i in range(1000):
            sk.update(("item", i))
        assert abs(sk.estimate_size() - 1000) / 1000 < 0.1

    def test_even_multiplicity_cancels(self):
        sk = OddSketch(num_bits=1024)
        for _ in range(2):
            for i in range(100):
                sk.update(("item", i))
        assert sk.odd_bit_count() == 0

    def test_even_weight_skipped(self):
        sk = OddSketch(num_bits=64)
        sk.update("x", weight=4)
        assert sk.odd_bit_count() == 0

    def test_symmetric_difference(self):
        a = OddSketch(num_bits=8192, seed=5)
        b = OddSketch(num_bits=8192, seed=5)
        shared = [("s", i) for i in range(500)]
        only_a = [("a", i) for i in range(250)]
        only_b = [("b", i) for i in range(250)]
        for item in shared + only_a:
            a.update(item)
        for item in shared + only_b:
            b.update(item)
        est = a.symmetric_difference(b)
        assert abs(est - 500) / 500 < 0.15

    def test_jaccard_estimate(self):
        a = OddSketch(num_bits=8192, seed=5)
        b = OddSketch(num_bits=8192, seed=5)
        for i in range(600):
            a.update(i)
        for i in range(300, 900):
            b.update(i)
        # |A| = |B| = 600, intersection 300, union 900 -> J = 1/3.
        est = a.jaccard(b, a.estimate_size(), b.estimate_size())
        assert abs(est - 1 / 3) < 0.1

    def test_incompatible_sketches_rejected(self):
        with pytest.raises(ValueError):
            OddSketch(64, seed=1).symmetric_difference(OddSketch(64, seed=2))
        with pytest.raises(ValueError):
            OddSketch(64, seed=1).symmetric_difference(OddSketch(128, seed=1))

    def test_memory(self):
        assert OddSketch(num_bits=8192).memory_bytes == 1024
