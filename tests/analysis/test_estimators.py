"""Unit tests for the control-plane estimators."""

import math

import numpy as np
import pytest

from repro.analysis.entropy import entropy_from_distribution, normalized_entropy
from repro.analysis.estimators import (
    alpha_m,
    coupon_collector_inversion,
    harmonic,
    hll_estimate,
    linear_counting_estimate,
    mrac_em,
    rho32,
    tune_coupon_probability,
)


class TestRho32:
    def test_all_zero(self):
        assert rho32(0) == 33
        assert rho32(0, skip_bits=16) == 17

    def test_msb_set(self):
        assert rho32(0x80000000) == 1

    def test_leading_zeros(self):
        assert rho32(0x00008000) == 17

    def test_skip_bits_window(self):
        # Only the low 16 bits are considered with skip_bits=16.
        assert rho32(0xFFFF0000, skip_bits=16) == 17
        assert rho32(0x00008000, skip_bits=16) == 1


class TestAlphaM:
    def test_known_small_values(self):
        assert alpha_m(16) == 0.673
        assert alpha_m(64) == 0.709

    def test_large_m_limit(self):
        assert 0.71 < alpha_m(1 << 14) < 0.7213


class TestHllEstimate:
    def test_empty_registers(self):
        assert hll_estimate(np.zeros(64)) < 5

    def test_scaling(self):
        """Synthetic registers for n items: E[max rho] ~ log2(n/m) + const."""
        m = 1024
        rng = np.random.default_rng(3)
        for n in (5_000, 50_000):
            per_bucket = n // m
            regs = rng.geometric(0.5, size=(m, per_bucket)).max(axis=1)
            est = hll_estimate(regs)
            assert 0.5 * n < est < 2.0 * n

    def test_zero_length(self):
        assert hll_estimate([]) == 0.0


class TestLinearCounting:
    def test_basic_inversion(self):
        # 1000 bits, 393 zeros -> -1000 ln(0.393) ~ 934
        est = linear_counting_estimate(1000, 393)
        assert est == pytest.approx(-1000 * math.log(0.393))

    def test_saturated(self):
        assert linear_counting_estimate(100, 0) == pytest.approx(100 * math.log(100))

    def test_empty(self):
        assert linear_counting_estimate(0, 0) == 0.0
        assert linear_counting_estimate(64, 64) == pytest.approx(0.0)


class TestCoupons:
    def test_harmonic(self):
        assert harmonic(1) == 1.0
        assert harmonic(3) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_tuning_hits_threshold_in_expectation(self):
        m, threshold = 16, 500
        p = tune_coupon_probability(m, threshold)
        expected = coupon_collector_inversion(m, m, p)
        assert expected == pytest.approx(threshold, rel=0.01)

    def test_tuning_clamped_for_tiny_thresholds(self):
        p = tune_coupon_probability(16, 1)
        assert p <= 1 / 16

    def test_inversion_monotone(self):
        p = tune_coupon_probability(16, 500)
        values = [coupon_collector_inversion(j, 16, p) for j in range(17)]
        assert values == sorted(values)
        assert values[0] == 0.0

    def test_inversion_validation(self):
        with pytest.raises(ValueError):
            coupon_collector_inversion(17, 16, 0.01)


class TestMracEm:
    def test_empty(self):
        assert mrac_em([], 64) == {}

    def test_no_collisions_is_identity(self):
        counters = [3] * 10 + [0] * 1000
        phi = mrac_em(counters, 1010, iterations=5)
        assert phi.get(3, 0) == pytest.approx(10, rel=0.2)

    def test_collision_splitting(self):
        """At high load, buckets of value 2 are mostly two colliding 1s."""
        rng = np.random.default_rng(5)
        m, n = 256, 256  # load factor 1 with all flows of size 1
        buckets = np.bincount(rng.integers(0, m, size=n), minlength=m)
        phi = mrac_em(buckets, m, iterations=30)
        est_flows = sum(phi.values())
        assert abs(est_flows - n) / n < 0.15
        # Essentially all estimated flows should have size 1.
        assert phi.get(1, 0) / est_flows > 0.9

    def test_large_values_preserved(self):
        phi = mrac_em([10_000, 1, 1], 64, max_size=100)
        assert phi.get(10_000, 0) >= 1


class TestEntropyHelpers:
    def test_uniform_distribution(self):
        # 8 flows of size 1: H = ln 8.
        assert entropy_from_distribution({1: 8}) == pytest.approx(math.log(8))

    def test_single_flow(self):
        assert entropy_from_distribution({100: 1}) == 0.0

    def test_ignores_non_positive(self):
        assert entropy_from_distribution({0: 5, -1: 2}) == 0.0

    def test_normalized_bounds(self):
        assert normalized_entropy({1: 8}) == pytest.approx(1.0)
        assert normalized_entropy({5: 1}) == 0.0
