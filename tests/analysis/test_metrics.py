"""Unit tests for the evaluation metrics (Appendix C)."""

import math

import pytest

from repro.analysis.metrics import (
    average_relative_error,
    f1_score,
    false_positive_rate,
    precision_recall,
    relative_error,
)


class TestRelativeError:
    def test_exact(self):
        assert relative_error(10, 10) == 0.0

    def test_symmetric_magnitude(self):
        assert relative_error(10, 15) == pytest.approx(0.5)
        assert relative_error(10, 5) == pytest.approx(0.5)

    def test_zero_truth(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(0, 5) == math.inf


class TestAverageRelativeError:
    def test_perfect_estimator(self):
        truth = {"a": 5, "b": 7}
        assert average_relative_error(truth, truth.__getitem__) == 0.0

    def test_constant_offset(self):
        truth = {"a": 10, "b": 20}
        are = average_relative_error(truth, lambda k: truth[k] * 1.1)
        assert are == pytest.approx(0.1)

    def test_empty_truth(self):
        assert average_relative_error({}, lambda k: 0) == 0.0


class TestPrecisionRecallF1:
    def test_perfect(self):
        assert f1_score({"a", "b"}, {"a", "b"}) == 1.0

    def test_half_precision(self):
        p, r = precision_recall({"a", "b"}, {"a"})
        assert p == 0.5 and r == 1.0

    def test_half_recall(self):
        p, r = precision_recall({"a"}, {"a", "b"})
        assert p == 1.0 and r == 0.5

    def test_f1_is_harmonic_mean(self):
        f1 = f1_score({"a", "x"}, {"a", "b"})
        assert f1 == pytest.approx(0.5)

    def test_empty_reported_with_truth(self):
        assert f1_score(set(), {"a"}) == 0.0

    def test_both_empty(self):
        assert f1_score(set(), set()) == pytest.approx(1.0)

    def test_disjoint(self):
        assert f1_score({"x"}, {"a"}) == 0.0


class TestFalsePositiveRate:
    def test_no_negatives(self):
        assert false_positive_rate({"a"}, []) == 0.0

    def test_rate(self):
        reported = {"a", "b"}
        negatives = ["a", "c", "d", "e"]
        assert false_positive_rate(reported, negatives) == pytest.approx(0.25)
