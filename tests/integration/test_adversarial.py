"""Adversarial and edge-condition tests: empty traffic, one flow, uniform
flows, minimum partitions, counter saturation."""

import pytest

from repro.analysis.metrics import average_relative_error
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import KEY_SRC_IP, Trace, uniform_trace, zipf_trace
from repro.traffic.packet import Packet


def cms_task(memory=2048, depth=3):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=depth,
        algorithm="cms",
    )


class TestEmptyAndDegenerate:
    def test_empty_trace(self):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(cms_task())
        controller.process_trace(Trace.empty())
        assert all(row.read().sum() == 0 for row in handle.rows)
        assert handle.algorithm.query((0x0A000001,)) == 0

    def test_query_before_any_traffic(self):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(cms_task())
        assert handle.algorithm.query((123,)) == 0

    def test_single_flow_exact(self):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(cms_task())
        trace = Trace.from_packets(
            [Packet(0x0A000001, 1, 2, 3, timestamp=i) for i in range(100)]
        )
        controller.process_trace(trace)
        assert handle.algorithm.query((0x0A000001,)) == 100

    def test_controller_without_tasks_forwards(self):
        controller = FlyMonController(num_groups=2)
        trace = zipf_trace(num_flows=50, num_packets=500, seed=30)
        controller.process_trace(trace)  # must not raise


class TestUniformTraffic:
    def test_uniform_flows_are_the_hard_case(self):
        """Equal-size flows: CMS error is pure collision noise, and at load
        factor >> 1 every estimate is inflated, never deflated."""
        trace = uniform_trace(num_flows=2000, packets_per_flow=5, seed=31)
        # A small register so the allocation really is 256 buckets per row
        # (the default register's minimum partition would floor it at 2048).
        controller = FlyMonController(num_groups=1, register_size=256)
        handle = controller.add_task(cms_task(memory=256))
        controller.process_trace(trace)
        truth = trace.flow_sizes(KEY_SRC_IP)
        assert all(handle.algorithm.query(f) >= 5 for f in truth)
        are = average_relative_error(truth, handle.algorithm.query)
        assert are > 0.5  # heavy collisions by construction

    def test_more_memory_fixes_it(self):
        trace = uniform_trace(num_flows=2000, packets_per_flow=5, seed=31)
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(cms_task(memory=16_384))
        controller.process_trace(trace)
        truth = trace.flow_sizes(KEY_SRC_IP)
        assert average_relative_error(truth, handle.algorithm.query) < 0.05


class TestSaturation:
    def test_counter_saturates_instead_of_wrapping(self):
        """Cond-ADD's bound prevents wraparound: a 32-bit bucket pinned at
        its maximum stays there."""
        controller = FlyMonController(num_groups=1, bucket_bits=16)
        handle = controller.add_task(cms_task(memory=1024, depth=1))
        fields_proto = Packet(0x0A000001, 1, 2, 3).fields()
        cmu = handle.rows[0].cmu
        # Pre-load the bucket near the 16-bit cap, then push past it.
        compressed = handle.rows[0].group.compress(fields_proto)
        index = cmu.index_for(handle.task_id, compressed)
        cmu.register.write(index, (1 << 16) - 2)
        for i in range(10):
            fields = dict(fields_proto)
            fields["timestamp"] = i
            controller.process_packet(fields)
        assert cmu.register.read(index) == (1 << 16) - 1

    def test_min_partition_still_functions(self):
        controller = FlyMonController(num_groups=1, register_size=1 << 11)
        handle = controller.add_task(cms_task(memory=1, depth=1))
        # Rounded up to the minimum partition (register/32 = 64 buckets).
        assert handle.rows[0].mem.length == (1 << 11) // 32
        controller.process_packet(Packet(0x0A000001, 1, 2, 3).fields())
        assert handle.rows[0].read().sum() == 1


class TestManyEpochsStability:
    def test_repeated_reset_cycles(self):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(cms_task())
        trace = zipf_trace(num_flows=100, num_packets=1000, seed=32)
        truth = trace.flow_sizes(KEY_SRC_IP)
        for _ in range(5):
            controller.process_trace(trace)
            are = average_relative_error(truth, handle.algorithm.query)
            assert are < 0.1
            handle.reset()
