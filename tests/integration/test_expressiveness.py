"""Expressiveness tests (§6): any partial key of the candidate key set can
combine with any supported attribute, and a group's k hash units really do
offer k(k+1)/2 distinct keys."""

import pytest

from repro.core.cmu_group import CmuGroup
from repro.core.compression import KeyExhaustedError
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import zipf_trace
from repro.traffic.flows import FlowKeyDef

#: A representative sample of the partial-key space (§2.1's examples).
PARTIAL_KEYS = [
    FlowKeyDef.of("src_ip"),
    FlowKeyDef.of(("src_ip", 24)),
    FlowKeyDef.of(("src_ip", 16)),
    FlowKeyDef.of("dst_ip"),
    FlowKeyDef.of("src_ip", "dst_ip"),
    FlowKeyDef.of("src_ip", "src_port"),
    FlowKeyDef.of("dst_ip", "dst_port"),
    FlowKeyDef.of("src_ip", "dst_ip", "src_port", "dst_port", "protocol"),
    FlowKeyDef.of(("src_ip", 24), "protocol"),
]

ATTRIBUTES = [
    ("cms", lambda key: AttributeSpec.frequency(), {}),
    ("hll", lambda key: AttributeSpec.distinct(key), {}),
    ("bloom", lambda key: AttributeSpec.existence(), {}),
    ("sumax_max", lambda key: AttributeSpec.maximum("queue_length"), {}),
    ("beaucoup", lambda key: AttributeSpec.distinct(FlowKeyDef.of("timestamp")), {"threshold": 128}),
]


class TestKeyAttributeMatrix:
    @pytest.mark.parametrize("key", PARTIAL_KEYS, ids=lambda k: k.describe())
    @pytest.mark.parametrize("algo,attr_fn,extra", ATTRIBUTES, ids=lambda a: a if isinstance(a, str) else "")
    def test_every_combination_deploys_and_runs(self, key, algo, attr_fn, extra):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(
            MeasurementTask(
                key=key,
                attribute=attr_fn(key),
                memory=2048,
                depth=1 if algo == "hll" else 2,
                algorithm=algo,
                **extra,
            )
        )
        trace = zipf_trace(num_flows=200, num_packets=1000, seed=13)
        controller.process_trace(trace)
        # Data-plane state was actually touched.
        touched = sum(int(row.read().sum()) for row in handle.rows)
        assert touched > 0


class TestKeyCapacity:
    def test_three_units_give_six_keys(self):
        """§3.1.1: k hash units select k(k+1)/2 keys (3 singles + 3 XOR pairs)."""
        group = CmuGroup(0, compression_units=3)
        assert group.max_selectable_keys() == 6
        singles = [{"src_ip": 32}, {"dst_ip": 32}, {"src_port": 16}]
        grants = [group.keys.acquire(mask) for mask in singles]
        pairs = [
            {"src_ip": 32, "dst_ip": 32},
            {"src_ip": 32, "src_port": 16},
            {"dst_ip": 32, "src_port": 16},
        ]
        for mask in pairs:
            grant = group.keys.acquire(mask)
            assert grant.new_masks == []  # composed by XOR, no new config
            assert len(grant.selector.units) == 2
        # All six selectors are distinct key functions.
        selectors = {g.selector.units for g in grants} | {
            tuple(sorted(group.keys.acquire(m).selector.units)) for m in pairs
        }
        assert len(selectors) >= 6 - 3  # 3 singles + 3 distinct pairs

    def test_seventh_key_needs_reconfiguration(self):
        group = CmuGroup(0, compression_units=3)
        for mask in ({"src_ip": 32}, {"dst_ip": 32}, {"src_port": 16}):
            group.keys.acquire(mask)
        with pytest.raises(KeyExhaustedError):
            group.keys.acquire({"dst_port": 16})

    def test_prefix_keys_compose_with_xor_too(self):
        group = CmuGroup(0, compression_units=3)
        group.keys.acquire({"src_ip": 24})
        group.keys.acquire({"dst_ip": 24})
        pair = group.keys.acquire({"src_ip": 24, "dst_ip": 24})
        assert pair.new_masks == []
