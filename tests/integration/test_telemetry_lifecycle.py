"""End-to-end telemetry: a task lifecycle emits the expected event story.

Deploy -> update filter -> resize -> remove on a live controller, with
telemetry enabled, then assert the control-plane event log tells that story
in order, with consistent task IDs, and that the datapath counters reflect
the packets actually processed.
"""

import pytest

from repro import telemetry
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import KEY_SRC_IP, zipf_trace


@pytest.fixture
def enabled_telemetry():
    state = telemetry.enable(sample_interval=16)
    state.reset()
    yield state
    telemetry.disable()
    telemetry.reset()


def _task(memory: int = 4096) -> MeasurementTask:
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=3,
        algorithm="cms",
    )


class TestLifecycleEvents:
    def test_add_reconfigure_remove_sequence(self, enabled_telemetry):
        controller = FlyMonController(num_groups=3)
        handle = controller.add_task(_task())
        controller.update_task_filter(
            handle, TaskFilter.of(src_ip=(10 << 24, 8))
        )
        resized = controller.resize_task(handle, 8192)
        controller.remove_task(resized)

        log = enabled_telemetry.events
        # At least five distinct event types appear.
        assert len(log.type_counts()) >= 5

        # The headline lifecycle, in order.
        story = [
            e for e in log
            if e.type in (
                telemetry.EV_TASK_ADD,
                telemetry.EV_TASK_FILTER_UPDATE,
                telemetry.EV_TASK_RESIZE,
                telemetry.EV_TASK_REMOVE,
            )
        ]
        assert [e.type for e in story] == [
            telemetry.EV_TASK_ADD,
            telemetry.EV_TASK_FILTER_UPDATE,
            telemetry.EV_TASK_ADD,      # resize deploys the new allocation first
            telemetry.EV_TASK_REMOVE,   # ... then removes the old one
            telemetry.EV_TASK_RESIZE,   # ... and records the swap
            telemetry.EV_TASK_REMOVE,   # the final explicit removal
        ]
        assert [e.seq for e in story] == sorted(e.seq for e in story)

        # Task IDs are consistent across the story.
        first_id = story[0].data["task_id"]
        new_id = resized.task_id
        assert story[1].data["task_id"] == first_id
        assert story[2].data["task_id"] == new_id
        assert story[3].data["task_id"] == first_id
        resize = story[4]
        assert resize.data["task_id"] == first_id
        assert resize.data["new_task_id"] == new_id
        assert resize.data["strategy"] == "make_before_break"
        assert resize.data["old_memory"] == 4096
        assert resize.data["new_memory"] == 8192
        assert story[5].data["task_id"] == new_id

    def test_supporting_events_reference_the_task(self, enabled_telemetry):
        controller = FlyMonController(num_groups=3)
        handle = controller.add_task(_task())
        task_id = handle.task_id

        log = enabled_telemetry.events
        placement = log.of_type(telemetry.EV_PLACEMENT_DECISION)
        assert len(placement) == 1
        assert placement[0].data["task_id"] == task_id
        assert placement[0].data["groups"] == list(handle.groups_used)

        grants = log.query(telemetry.EV_KEY_GRANT, task_id=task_id)
        assert grants, "deploying a task must grant compressed keys"
        assert all(isinstance(g.data["reused"], bool) for g in grants)

        allocs = log.of_type(telemetry.EV_MEM_ALLOC)
        assert len(allocs) == 3  # one row per depth-3 CMS row
        assert all(a.data["owner"].startswith("cmug") for a in allocs)

        installs = log.of_type(telemetry.EV_RULES_INSTALL)
        assert installs and installs[0].data["deployment"] == f"task{task_id}"

        # Placement decided before keys were granted, before rules installed.
        assert placement[0].seq < grants[0].seq < installs[-1].seq

        controller.remove_task(handle)
        frees = log.of_type(telemetry.EV_MEM_FREE)
        releases = log.query(telemetry.EV_KEY_RELEASE, task_id=task_id)
        assert len(frees) == 3 and releases

    def test_datapath_counters_track_processed_packets(self, enabled_telemetry):
        controller = FlyMonController(num_groups=3)
        controller.add_task(_task())
        trace = zipf_trace(num_flows=64, num_packets=300, seed=3)
        packets = sum(1 for _ in trace.iter_fields())
        controller.process_trace(trace)

        registry = enabled_telemetry.registry
        assert registry.value("flymon_pipeline_packets_total") == packets
        for stage in range(12):
            assert (
                registry.value("flymon_stage_packets_total", stage=str(stage))
                == packets
            )
        for group in range(3):
            assert (
                registry.value("flymon_group_packets_total", group=str(group))
                == packets
            )
        # Sampled spans: one per sample_interval packets.
        spans = registry.get("flymon_pipeline_process_seconds")
        assert spans.count == packets // 16

        controller.record_telemetry()
        assert registry.value(
            "flymon_resource_utilization", scope="pipeline", resource="hash_units"
        ) > 0

    def test_disabled_telemetry_emits_nothing(self):
        telemetry.disable()
        telemetry.reset()
        controller = FlyMonController(num_groups=3)
        handle = controller.add_task(_task())
        controller.remove_task(handle)
        assert len(telemetry.TELEMETRY.events) == 0
