"""Integration tests for on-the-fly reconfiguration (§5.1, Fig. 12b).

The core promise: adding/removing/resizing tasks at runtime neither
interrupts traffic processing nor perturbs co-located tasks' state.
"""

import pytest

from repro.analysis.metrics import average_relative_error
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import KEY_DST_IP, KEY_SRC_IP, zipf_trace


def freq_task(**kwargs):
    defaults = dict(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=4096,
        depth=3,
        algorithm="cms",
        filter=TaskFilter.of(src_ip=(0x0A000000, 8)),
    )
    defaults.update(kwargs)
    return MeasurementTask(**defaults)


class TestTaskIsolation:
    def test_adding_task_b_does_not_disturb_task_a(self):
        controller = FlyMonController(num_groups=1)
        task_a = controller.add_task(freq_task(memory=2048))
        trace = zipf_trace(num_flows=1000, num_packets=10000, seed=5)
        half = trace.split_epochs(2)

        controller.process_trace(half[0])
        snapshot = [row.read().copy() for row in task_a.rows]

        # Insert task B (distinct filter, same group/CMUs) mid-epoch.
        task_b = controller.add_task(
            freq_task(
                memory=2048,
                key=KEY_DST_IP,
                filter=TaskFilter.of(src_ip=(0x14000000, 8)),
            )
        )
        for before, row in zip(snapshot, task_a.rows):
            assert (row.read() == before).all()

        controller.process_trace(half[1])
        truth = trace.flow_sizes(KEY_SRC_IP)
        are = average_relative_error(truth, task_a.algorithm.query)
        assert are < 0.25

    def test_removing_task_b_does_not_disturb_task_a(self):
        controller = FlyMonController(num_groups=1)
        task_a = controller.add_task(freq_task(memory=2048))
        task_b = controller.add_task(
            freq_task(memory=2048, filter=TaskFilter.of(src_ip=(0x14000000, 8)))
        )
        trace = zipf_trace(num_flows=500, num_packets=5000, seed=6)
        controller.process_trace(trace)
        snapshot = [row.read().copy() for row in task_a.rows]
        controller.remove_task(task_b)
        for before, row in zip(snapshot, task_a.rows):
            assert (row.read() == before).all()

    def test_new_task_reuses_recycled_memory_zeroed(self):
        controller = FlyMonController(num_groups=1)
        task_b = controller.add_task(freq_task(memory=2048))
        controller.process_trace(zipf_trace(num_flows=500, num_packets=5000, seed=7))
        controller.remove_task(task_b)
        task_c = controller.add_task(freq_task(memory=2048))
        assert all(row.read().sum() == 0 for row in task_c.rows)


class TestDeploymentDelay:
    def test_all_algorithms_deploy_within_100ms(self):
        """§5.1: every built-in algorithm deploys within 100 ms."""
        cases = [
            ("cms", AttributeSpec.frequency(), 3, {}),
            ("hll", AttributeSpec.distinct(KEY_SRC_IP), 1, {}),
            ("bloom", AttributeSpec.existence(), 3, {}),
            ("sumax_max", AttributeSpec.maximum("queue_length"), 3, {}),
            ("mrac", AttributeSpec.frequency(), 1, {}),
            ("sumax_sum", AttributeSpec.frequency(), 3, {}),
            (
                "beaucoup",
                AttributeSpec.distinct(KEY_DST_IP),
                3,
                {"threshold": 512},
            ),
        ]
        for name, attr, depth, extra in cases:
            controller = FlyMonController(num_groups=3)
            handle = controller.add_task(
                MeasurementTask(
                    key=KEY_SRC_IP,
                    attribute=attr,
                    memory=16384,
                    depth=depth,
                    algorithm=name,
                    **extra,
                )
            )
            assert 0 < handle.deployment_ms < 100, name

    def test_removal_is_also_fast(self):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(freq_task())
        report = controller.remove_task(handle)
        assert report.latency_ms < 100


class TestRuntimeClock:
    def test_clock_accumulates_reconfigurations(self):
        controller = FlyMonController(num_groups=1)
        t0 = controller.runtime.now_ms
        handle = controller.add_task(freq_task())
        t1 = controller.runtime.now_ms
        controller.remove_task(handle)
        t2 = controller.runtime.now_ms
        assert t0 < t1 < t2
