"""Integration tests: network-wide coordination and heavy-changer analysis."""

import pytest

from repro.analysis.changers import change_magnitudes, heavy_changers
from repro.core.controller import FlyMonController
from repro.core.network import NetworkCoordinator
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import KEY_5TUPLE, KEY_SRC_IP, Trace, zipf_trace


def freq_task(memory=8192, **kwargs):
    defaults = dict(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=3,
        algorithm="cms",
    )
    defaults.update(kwargs)
    return MeasurementTask(**defaults)


class TestNetworkCoordinator:
    def test_deploy_everywhere(self):
        net = NetworkCoordinator(["leaf1", "leaf2", "spine"])
        handle = net.deploy_everywhere(freq_task())
        assert set(handle.per_switch) == {"leaf1", "leaf2", "spine"}
        assert net.total_deployment_ms(handle) > 0

    def test_frequency_sums_across_edges(self):
        """Edge-partitioned traffic: per-flow totals sum across switches."""
        net = NetworkCoordinator(["leaf1", "leaf2"])
        handle = net.deploy_everywhere(freq_task())
        t1 = zipf_trace(num_flows=500, num_packets=5000, seed=1)
        t2 = zipf_trace(num_flows=500, num_packets=5000, seed=2)
        net.process({"leaf1": t1, "leaf2": t2})
        merged_truth = Trace.concatenate([t1, t2]).flow_sizes(KEY_SRC_IP)
        errors = [
            abs(handle.query_sum(flow) - count) / count
            for flow, count in merged_truth.items()
        ]
        assert sum(errors) / len(errors) < 0.2

    def test_hll_merge_does_not_double_count(self):
        """The same flows crossing two switches count once after merge."""
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(
            MeasurementTask(
                key=KEY_5TUPLE,
                attribute=AttributeSpec.distinct(KEY_5TUPLE),
                memory=2048,
                depth=1,
                algorithm="hll",
            )
        )
        shared = zipf_trace(num_flows=2000, num_packets=6000, seed=5)
        net.process({"a": shared, "b": shared})
        merged = handle.merged_cardinality()
        true = shared.cardinality(KEY_5TUPLE)
        assert abs(merged - true) / true < 0.15

    def test_hll_merge_unions_disjoint_populations(self):
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(
            MeasurementTask(
                key=KEY_5TUPLE,
                attribute=AttributeSpec.distinct(KEY_5TUPLE),
                memory=2048,
                depth=1,
                algorithm="hll",
            )
        )
        t1 = zipf_trace(num_flows=1500, num_packets=3000, seed=7)
        t2 = zipf_trace(num_flows=1500, num_packets=3000, seed=8)
        net.process({"a": t1, "b": t2})
        merged = handle.merged_cardinality()
        assert abs(merged - 3000) / 3000 < 0.15

    def test_remove_everywhere(self):
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(freq_task())
        net.remove_everywhere(handle)
        assert all(not c.tasks for c in net.switches.values())

    def test_empty_coordinator_rejected(self):
        with pytest.raises(ValueError):
            NetworkCoordinator([])


class TestHeavyChangers:
    def test_detects_epoch_over_epoch_change(self):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(freq_task())

        epoch1 = zipf_trace(num_flows=800, num_packets=8000, seed=11)
        controller.process_trace(epoch1)
        before = {
            flow: handle.algorithm.query(flow)
            for flow in epoch1.flow_sizes(KEY_SRC_IP)
        }
        handle.reset()

        # Epoch 2: the same flows plus one source suddenly surging.
        surge_src = int(epoch1.columns["src_ip"][0])
        controller.process_trace(epoch1)
        # Drive 1500 extra packets from the surge source.
        for _ in range(1500):
            controller.process_packet(
                {"src_ip": surge_src, "dst_ip": 1, "src_port": 2, "dst_port": 3,
                 "protocol": 6, "timestamp": 0, "pkt_bytes": 64,
                 "queue_length": 0, "queue_delay": 0}
            )

        after_query = handle.algorithm.query
        changed = heavy_changers(
            before.get, after_query, before.keys(), threshold=1000
        )
        assert (surge_src,) in changed
        assert len(changed) <= 3  # only the surging source (plus CMS noise)

    def test_change_magnitudes_sorted(self):
        before = {"a": 10, "b": 100}.get
        after = {"a": 500, "b": 110}.get
        ranked = change_magnitudes(before, after, ["a", "b"])
        assert list(ranked) == ["a", "b"]
        assert ranked["a"] == 490
