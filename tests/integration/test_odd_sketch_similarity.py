"""Integration test: CMU-hosted Odd Sketch set similarity (§6 expansion)."""

import pytest

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import KEY_SRC_IP, Trace, zipf_trace


def odd_task(dst_octet: int) -> MeasurementTask:
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.distinct(KEY_SRC_IP),
        memory=4096,
        depth=1,
        algorithm="odd_sketch",
        filter=TaskFilter.of(dst_ip=(dst_octet << 24, 8)),
    )


class TestOddSketchOnCmu:
    def setup_method(self):
        self.controller = FlyMonController(num_groups=1)
        self.task_a = self.controller.add_task(odd_task(20))
        self.task_b = self.controller.add_task(odd_task(40))

    def _drive(self, seed_a=1, seed_b=1, flows=1200):
        trace_a = zipf_trace(
            num_flows=flows, num_packets=flows, seed=seed_a, dst_prefix=20 << 24
        )
        trace_b = zipf_trace(
            num_flows=flows, num_packets=flows, seed=seed_b, dst_prefix=40 << 24
        )
        self.controller.process_trace(trace_a)
        self.controller.process_trace(trace_b)
        return trace_a, trace_b

    def test_identical_source_sets(self):
        # Same generator seed -> identical source populations.
        trace_a, trace_b = self._drive(seed_a=1, seed_b=1)
        assert set(trace_a.flow_sizes(KEY_SRC_IP)) == set(
            trace_b.flow_sizes(KEY_SRC_IP)
        )
        assert self.task_a.algorithm.jaccard(self.task_b.algorithm) > 0.9

    def test_disjoint_source_sets(self):
        trace_a, trace_b = self._drive(seed_a=1, seed_b=999)
        sa = set(trace_a.flow_sizes(KEY_SRC_IP))
        sb = set(trace_b.flow_sizes(KEY_SRC_IP))
        assert len(sa & sb) == 0
        assert self.task_a.algorithm.jaccard(self.task_b.algorithm) < 0.1

    def test_size_estimates(self):
        trace_a, _ = self._drive()
        true_size = len(set(trace_a.flow_sizes(KEY_SRC_IP)))
        est = self.task_a.algorithm.estimate_size()
        assert abs(est - true_size) / true_size < 0.15

    def test_incompatible_partition_sizes_rejected(self):
        controller = FlyMonController(num_groups=1)
        a = controller.add_task(odd_task(20))
        small = MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=2048,
            depth=1,
            algorithm="odd_sketch",
            filter=TaskFilter.of(dst_ip=(40 << 24, 8)),
        )
        b = controller.add_task(small)
        with pytest.raises(ValueError):
            a.algorithm.symmetric_difference(b.algorithm)
