"""Integration: the adaptive memory manager driven by the epoch runner --
the full SDM control loop over FlyMon's reconfigurable data plane."""

import pytest

from repro.analysis.metrics import average_relative_error
from repro.core.adaptive import AdaptiveMemoryManager
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import KEY_SRC_IP, Trace, zipf_trace


def build_surging_trace(num_epochs=8, surge=range(3, 6)):
    """Epochs of light traffic with a mid-run flow surge, time-offset so
    ``split_epochs`` recovers them."""
    parts = []
    for epoch in range(num_epochs):
        flows = 2500 if epoch in surge else 100
        parts.append(
            zipf_trace(
                num_flows=flows,
                num_packets=2 * flows,
                seed=70 + epoch,
                start_us=epoch * 1_000_000,
            )
        )
    return Trace.concatenate(parts)


class TestAdaptiveControlLoop:
    def test_memory_tracks_the_surge_and_accuracy_holds(self):
        controller = FlyMonController(num_groups=1, register_size=1 << 13)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=256,
                depth=3,
                algorithm="cms",
            )
        )
        manager = AdaptiveMemoryManager(
            controller=controller,
            handle=handle,
            min_memory=256,
            max_memory=1 << 13,
        )

        trace = build_surging_trace()
        memory_series = []
        surge_ares = []
        for epoch, window in enumerate(trace.split_epochs(8)):
            controller.process_trace(window)
            if epoch in range(3, 6):
                truth = window.flow_sizes(KEY_SRC_IP)
                surge_ares.append(
                    average_relative_error(truth, manager.handle.algorithm.query)
                )
            manager.end_of_epoch()
            memory_series.append(manager.memory)

        # Memory grew through the surge and shrank afterwards.
        assert max(memory_series[3:6]) > memory_series[0]
        assert memory_series[-1] < max(memory_series)
        # Each growth step improved the surge-epoch accuracy.
        assert surge_ares[-1] < surge_ares[0]

    def test_decisions_are_auditable(self):
        controller = FlyMonController(num_groups=1, register_size=1 << 12)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=128,
                depth=3,
                algorithm="cms",
            )
        )
        manager = AdaptiveMemoryManager(controller=controller, handle=handle)
        trace = build_surging_trace(num_epochs=4, surge=range(1, 3))
        for window in trace.split_epochs(4):
            controller.process_trace(window)
            manager.end_of_epoch()
        assert len(manager.history) == 4
        assert {d.action for d in manager.history} <= {
            "grow", "shrink", "hold", "blocked"
        }
