"""Integration tests: every built-in algorithm deployed end-to-end on a
controller, fed a real trace, and scored against exact ground truth."""

import pytest

from repro.analysis.metrics import (
    average_relative_error,
    f1_score,
    relative_error,
)
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import KEY_5TUPLE, KEY_DST_IP, KEY_SRC_IP, ddos_trace, zipf_trace

TRACE = zipf_trace(num_flows=2_000, num_packets=20_000, seed=1234)
TRUTH_SIZES = TRACE.flow_sizes(KEY_SRC_IP)


def deploy_and_run(task, num_groups=3, trace=TRACE):
    controller = FlyMonController(num_groups=num_groups)
    handle = controller.add_task(task)
    controller.process_trace(trace)
    return controller, handle


class TestFrequencyAlgorithms:
    def test_cms_accuracy(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=8192,
                algorithm="cms",
            )
        )
        assert average_relative_error(TRUTH_SIZES, handle.algorithm.query) < 0.1

    def test_cms_never_underestimates(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=2048,
                algorithm="cms",
            )
        )
        for flow, true_count in TRUTH_SIZES.items():
            assert handle.algorithm.query(flow) >= true_count

    def test_sumax_beats_cms_at_tight_memory(self):
        _, cms = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=1024,
                algorithm="cms",
            )
        )
        _, sumax = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=1024,
                algorithm="sumax_sum",
            )
        )
        are_cms = average_relative_error(TRUTH_SIZES, cms.algorithm.query)
        are_sumax = average_relative_error(TRUTH_SIZES, sumax.algorithm.query)
        assert are_sumax <= are_cms

    def test_heavy_hitter_f1(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=8192,
                algorithm="cms",
            )
        )
        truth = TRACE.heavy_hitters(KEY_SRC_IP, 100)
        reported = handle.algorithm.heavy_hitters(TRUTH_SIZES.keys(), 100)
        assert f1_score(reported, truth) > 0.95

    def test_tower_accurate_for_mice(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=4096,
                algorithm="tower",
            )
        )
        mice = {k: v for k, v in TRUTH_SIZES.items() if v <= 100}
        assert average_relative_error(mice, handle.algorithm.query) < 0.2

    def test_counter_braids_exact_for_most_flows(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=16384,
                algorithm="counter_braids",
            )
        )
        exact = sum(
            1 for k, v in TRUTH_SIZES.items() if handle.algorithm.query(k) == v
        )
        assert exact / len(TRUTH_SIZES) > 0.8

    def test_byte_counting(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency("pkt_bytes"),
                memory=8192,
                algorithm="cms",
            )
        )
        truth_bytes = TRACE.flow_sizes(KEY_SRC_IP, by_bytes=True)
        assert average_relative_error(truth_bytes, handle.algorithm.query) < 0.15


class TestDistinctAlgorithms:
    def test_hll_cardinality(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_5TUPLE,
                attribute=AttributeSpec.distinct(KEY_5TUPLE),
                memory=2048,
                algorithm="hll",
            )
        )
        true = TRACE.cardinality(KEY_5TUPLE)
        assert relative_error(true, handle.algorithm.estimate()) < 0.1

    def test_linear_counting_cardinality(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_5TUPLE,
                attribute=AttributeSpec.distinct(KEY_5TUPLE),
                memory=1024,
                algorithm="linear_counting",
            )
        )
        true = TRACE.cardinality(KEY_5TUPLE)
        assert relative_error(true, handle.algorithm.estimate()) < 0.05

    def test_beaucoup_ddos_victims(self):
        trace = ddos_trace(
            num_victims=8,
            sources_per_victim=1200,
            background_flows=2000,
            background_packets=10000,
            seed=77,
        )
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_DST_IP,
                attribute=AttributeSpec.distinct(KEY_SRC_IP),
                memory=16384,
                depth=3,
                algorithm="beaucoup",
                threshold=512,
            )
        )
        controller.process_trace(trace)
        counts = trace.distinct_counts(KEY_DST_IP, KEY_SRC_IP)
        truth = {k for k, v in counts.items() if v >= 512}
        reported = handle.algorithm.alarms(counts.keys())
        assert f1_score(reported, truth) > 0.85

    def test_mrac_entropy(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_5TUPLE,
                attribute=AttributeSpec.frequency(),
                memory=8192,
                algorithm="mrac",
            ),
            num_groups=1,
        )
        true = TRACE.entropy(KEY_5TUPLE)
        est = handle.algorithm.estimate_entropy(iterations=25)
        assert relative_error(true, est) < 0.05


class TestExistenceAndMax:
    def test_bloom_no_false_negatives(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.existence(),
                memory=2048,
                algorithm="bloom",
            ),
            num_groups=1,
        )
        for flow in TRUTH_SIZES:
            assert handle.algorithm.contains(flow)

    def test_bloom_low_false_positives(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.existence(),
                memory=2048,
                algorithm="bloom",
            ),
            num_groups=1,
        )
        probes = zipf_trace(num_flows=3000, num_packets=3000, seed=999)
        negatives = set(probes.flow_sizes(KEY_SRC_IP)) - set(TRUTH_SIZES)
        fp = sum(1 for flow in negatives if handle.algorithm.contains(flow))
        assert fp / len(negatives) < 0.02

    def test_max_queue_length(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.maximum("queue_length"),
                memory=8192,
                algorithm="sumax_max",
            ),
            num_groups=1,
        )
        truth = {
            k: v for k, v in TRACE.max_values(KEY_SRC_IP, "queue_length").items() if v > 0
        }
        # MAX never underestimates; collisions only inflate.
        for flow, true_max in truth.items():
            assert handle.algorithm.query(flow) >= true_max
        assert average_relative_error(truth, handle.algorithm.query) < 0.25

    def test_max_interarrival(self):
        _, handle = deploy_and_run(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.maximum("packet_interval"),
                memory=8192,
                depth=3,
                algorithm="max_interarrival",
            )
        )
        truth = {k: v for k, v in TRACE.max_interarrival(KEY_SRC_IP).items() if v > 0}
        are = average_relative_error(truth, handle.algorithm.query)
        assert are < 0.5
