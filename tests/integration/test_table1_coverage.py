"""Integration coverage of Table 1: every measurement task the paper lists
is expressible as a FlyMon task and produces sane answers end-to-end."""

import pytest

from repro.analysis.changers import heavy_changers
from repro.analysis.metrics import f1_score, relative_error
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import (
    KEY_5TUPLE,
    KEY_DST_IP,
    KEY_IP_PAIR,
    KEY_SRC_IP,
    ddos_trace,
    portscan_trace,
    superspreader_trace,
    zipf_trace,
)
from repro.traffic.flows import FlowKeyDef

KEY_DST_PORT = FlowKeyDef.of("dst_port")


def run_task(task, trace, num_groups=3):
    controller = FlyMonController(num_groups=num_groups)
    handle = controller.add_task(task)
    controller.process_trace(trace)
    return handle


class TestTable1Tasks:
    def test_ddos_victim(self):
        """DstIP x Distinct(SrcIP) -> BeauCoup."""
        trace = ddos_trace(
            num_victims=6, sources_per_victim=1000,
            background_flows=1500, background_packets=8000, seed=1,
        )
        handle = run_task(
            MeasurementTask(
                key=KEY_DST_IP,
                attribute=AttributeSpec.distinct(KEY_SRC_IP),
                memory=16_384,
                depth=3,
                algorithm="beaucoup",
                threshold=512,
            ),
            trace,
            num_groups=1,
        )
        counts = trace.distinct_counts(KEY_DST_IP, KEY_SRC_IP)
        truth = {k for k, v in counts.items() if v >= 512}
        assert f1_score(handle.algorithm.alarms(counts.keys()), truth) > 0.8

    def test_worm_superspreader(self):
        """SrcIP x Distinct(DstIP) -> BeauCoup."""
        trace = superspreader_trace(
            num_spreaders=5, contacts_per_spreader=1500,
            background_flows=1500, background_packets=8000, seed=2,
        )
        handle = run_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.distinct(KEY_DST_IP),
                memory=16_384,
                depth=3,
                algorithm="beaucoup",
                threshold=1000,
            ),
            trace,
            num_groups=1,
        )
        counts = trace.distinct_counts(KEY_SRC_IP, KEY_DST_IP)
        truth = {k for k, v in counts.items() if v >= 1000}
        assert f1_score(handle.algorithm.alarms(counts.keys()), truth) > 0.8

    def test_port_scan(self):
        """IP-pair x Distinct(DstPort) -> BeauCoup."""
        trace = portscan_trace(
            num_scanners=4, ports_per_scan=800,
            background_flows=1500, background_packets=8000, seed=3,
        )
        handle = run_task(
            MeasurementTask(
                key=KEY_IP_PAIR,
                attribute=AttributeSpec.distinct(KEY_DST_PORT),
                memory=16_384,
                depth=3,
                algorithm="beaucoup",
                threshold=500,
            ),
            trace,
            num_groups=1,
        )
        counts = trace.distinct_counts(KEY_IP_PAIR, KEY_DST_PORT)
        truth = {k for k, v in counts.items() if v >= 500}
        assert f1_score(handle.algorithm.alarms(counts.keys()), truth) > 0.8

    def test_cardinality(self):
        """FlowID distinct counting -> HLL."""
        trace = zipf_trace(num_flows=4000, num_packets=20_000, seed=4)
        handle = run_task(
            MeasurementTask(
                key=KEY_5TUPLE,
                attribute=AttributeSpec.distinct(KEY_5TUPLE),
                memory=2048,
                depth=1,
                algorithm="hll",
            ),
            trace,
            num_groups=1,
        )
        assert relative_error(
            trace.cardinality(KEY_5TUPLE), handle.algorithm.estimate()
        ) < 0.1

    def test_per_flow_size_packets_and_bytes(self):
        """FlowID x Frequency(1) and Frequency(bytes) -> CMS."""
        trace = zipf_trace(num_flows=1000, num_packets=10_000, seed=5)
        for param in (1, "pkt_bytes"):
            handle = run_task(
                MeasurementTask(
                    key=KEY_5TUPLE,
                    attribute=AttributeSpec.frequency(param),
                    memory=8192,
                    depth=3,
                    algorithm="cms",
                ),
                trace,
                num_groups=1,
            )
            truth = trace.flow_sizes(KEY_5TUPLE, by_bytes=param == "pkt_bytes")
            sample = list(truth.items())[:50]
            for flow, count in sample:
                assert handle.algorithm.query(flow) >= min(count, 2**32 - 1) * 0.99

    def test_heavy_hitter(self):
        trace = zipf_trace(num_flows=2000, num_packets=20_000, seed=6)
        handle = run_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=8192,
                depth=3,
                algorithm="sumax_sum",
            ),
            trace,
        )
        truth_sizes = trace.flow_sizes(KEY_SRC_IP)
        truth = {k for k, v in truth_sizes.items() if v >= 200}
        reported = handle.algorithm.heavy_hitters(truth_sizes.keys(), 200)
        assert f1_score(reported, truth) > 0.9

    def test_heavy_changer(self):
        """Two frequency epochs diffed in the control plane."""
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=8192,
                depth=3,
                algorithm="cms",
            )
        )
        epoch1 = zipf_trace(num_flows=500, num_packets=5000, seed=7)
        controller.process_trace(epoch1)
        flows = list(epoch1.flow_sizes(KEY_SRC_IP))
        before = {f: handle.algorithm.query(f) for f in flows}
        handle.reset()
        surge = int(epoch1.columns["src_ip"][0])
        controller.process_trace(epoch1)
        for _ in range(800):
            controller.process_packet(
                {"src_ip": surge, "dst_ip": 1, "src_port": 1, "dst_port": 1,
                 "protocol": 6, "timestamp": 0, "pkt_bytes": 64,
                 "queue_length": 0, "queue_delay": 0}
            )
        changed = heavy_changers(before.get, handle.algorithm.query, flows, 500)
        assert (surge,) in changed

    def test_black_list_existence(self):
        """FlowID existence check -> Bloom Filter."""
        trace = zipf_trace(num_flows=500, num_packets=2000, seed=8)
        handle = run_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.existence(),
                memory=2048,
                depth=3,
                algorithm="bloom",
            ),
            trace,
            num_groups=1,
        )
        assert all(
            handle.algorithm.contains(f) for f in trace.flow_sizes(KEY_SRC_IP)
        )

    def test_congestion_max_queue_length(self):
        trace = zipf_trace(num_flows=500, num_packets=5000, seed=9)
        handle = run_task(
            MeasurementTask(
                key=KEY_5TUPLE,
                attribute=AttributeSpec.maximum("queue_length"),
                memory=8192,
                depth=3,
                algorithm="sumax_max",
            ),
            trace,
            num_groups=1,
        )
        truth = trace.max_values(KEY_5TUPLE, "queue_length")
        for flow, value in list(truth.items())[:50]:
            assert handle.algorithm.query(flow) >= value

    def test_hol_max_queue_delay(self):
        trace = zipf_trace(num_flows=500, num_packets=5000, seed=10)
        handle = run_task(
            MeasurementTask(
                key=KEY_5TUPLE,
                attribute=AttributeSpec.maximum("queue_delay"),
                memory=8192,
                depth=3,
                algorithm="sumax_max",
            ),
            trace,
            num_groups=1,
        )
        truth = trace.max_values(KEY_5TUPLE, "queue_delay")
        for flow, value in list(truth.items())[:50]:
            assert handle.algorithm.query(flow) >= value

    def test_packet_interval(self):
        trace = zipf_trace(num_flows=500, num_packets=5000, seed=11)
        handle = run_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.maximum("packet_interval"),
                memory=8192,
                depth=2,
                algorithm="max_interarrival",
            ),
            trace,
        )
        truth = {k: v for k, v in trace.max_interarrival(KEY_SRC_IP).items() if v > 0}
        errors = [
            relative_error(v, handle.algorithm.query(k)) for k, v in truth.items()
        ]
        assert sum(errors) / len(errors) < 0.6
