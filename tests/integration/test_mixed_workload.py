"""Stress test: a heterogeneous task zoo co-resident on one controller.

Exercises the controller's placement, key sharing, and memory management
with many different algorithms deployed simultaneously -- the operating
regime the paper's introduction motivates.
"""

import pytest

from repro.analysis.metrics import f1_score, relative_error
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import (
    KEY_5TUPLE,
    KEY_DST_IP,
    KEY_SRC_IP,
    Trace,
    ddos_trace,
)


@pytest.fixture(scope="module")
def deployment():
    controller = FlyMonController(num_groups=9)
    trace = ddos_trace(
        num_victims=5,
        sources_per_victim=1200,
        background_flows=3000,
        background_packets=15_000,
        seed=50,
    )
    handles = {}
    handles["hll"] = controller.add_task(
        MeasurementTask(
            key=KEY_5TUPLE,
            attribute=AttributeSpec.distinct(KEY_5TUPLE),
            memory=2048,
            depth=1,
            algorithm="hll",
        )
    )
    handles["beaucoup"] = controller.add_task(
        MeasurementTask(
            key=KEY_DST_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=16_384,
            depth=3,
            algorithm="beaucoup",
            threshold=512,
        )
    )
    handles["cms"] = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=8192,
            depth=3,
            algorithm="cms",
            threshold=200,
        )
    )
    handles["maxq"] = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.maximum("queue_length"),
            memory=8192,
            depth=3,
            algorithm="sumax_max",
            filter=TaskFilter.of(dst_port=(80, 16)),
        )
    )
    handles["bloom"] = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.existence(),
            memory=2048,
            depth=3,
            algorithm="bloom",
            filter=TaskFilter.of(protocol=(17, 8)),
        )
    )
    handles["sumax"] = controller.add_task(
        MeasurementTask(
            key=KEY_DST_IP,
            attribute=AttributeSpec.frequency("pkt_bytes"),
            memory=8192,
            depth=3,
            algorithm="sumax_sum",
        )
    )
    controller.process_trace(trace)
    return controller, trace, handles


class TestMixedWorkload:
    def test_all_tasks_deployed(self, deployment):
        controller, _, handles = deployment
        assert len(controller.tasks) == len(handles)

    def test_cardinality_still_accurate(self, deployment):
        _, trace, handles = deployment
        est = handles["hll"].algorithm.estimate()
        true = trace.cardinality(KEY_5TUPLE)
        assert relative_error(true, est) < 0.1

    def test_ddos_victims_found(self, deployment):
        _, trace, handles = deployment
        counts = trace.distinct_counts(KEY_DST_IP, KEY_SRC_IP)
        truth = {k for k, v in counts.items() if v >= 512}
        reported = handles["beaucoup"].algorithm.alarms(counts.keys())
        assert f1_score(reported, truth) > 0.8

    def test_heavy_hitters_via_digests(self, deployment):
        _, trace, handles = deployment
        truth = trace.heavy_hitters(KEY_SRC_IP, 200)
        reported = handles["cms"].algorithm.data_plane_heavy_hitters()
        assert f1_score(reported, truth) > 0.9

    def test_filtered_tasks_only_saw_their_traffic(self, deployment):
        _, trace, handles = deployment
        udp = trace.filter_mask(trace.columns["protocol"] == 17)
        udp_sources = set(udp.flow_sizes(KEY_SRC_IP))
        bloom = handles["bloom"].algorithm
        assert all(bloom.contains(f) for f in udp_sources)

    def test_byte_counts_never_underestimate(self, deployment):
        _, trace, handles = deployment
        truth = trace.flow_sizes(KEY_DST_IP, by_bytes=True)
        sample = list(truth.items())[:100]
        for flow, true_bytes in sample:
            assert handles["sumax"].algorithm.query(flow) >= true_bytes * 0.99

    def test_controller_stats_consistent(self, deployment):
        controller, _, handles = deployment
        stats = controller.stats()
        assert stats["tasks"] == len(handles)
        assert 0.0 < stats["memory_utilization"] < 1.0

    def test_teardown_releases_everything(self, deployment):
        controller, _, handles = deployment
        for handle in list(handles.values()):
            controller.remove_task(handle)
        handles.clear()
        stats = controller.stats()
        assert stats["tasks"] == 0
        assert stats["memory_utilization"] == 0.0
