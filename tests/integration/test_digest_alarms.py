"""Integration tests for data-plane alarm digests (threshold-based
heavy-hitter reporting without candidate enumeration)."""

import pytest

from repro.analysis.metrics import f1_score
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import KEY_SRC_IP, zipf_trace


def armed_task(threshold, memory=8192, algorithm="cms"):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=3,
        algorithm=algorithm,
        threshold=threshold,
    )


class TestDigestAlarms:
    def test_digests_match_ground_truth(self):
        trace = zipf_trace(num_flows=2000, num_packets=20_000, seed=40)
        truth = trace.heavy_hitters(KEY_SRC_IP, 200)
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(armed_task(200))
        controller.process_trace(trace)
        reported = handle.algorithm.data_plane_heavy_hitters()
        assert f1_score(reported, truth) > 0.95

    def test_no_threshold_means_no_digests(self):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=4096,
                depth=3,
                algorithm="cms",
            )
        )
        controller.process_trace(zipf_trace(num_flows=200, num_packets=5000, seed=41))
        assert handle.algorithm.data_plane_heavy_hitters() == set()

    def test_digest_requires_all_rows_to_cross(self):
        """A collision inflating one row must not alone trigger a report."""
        trace = zipf_trace(num_flows=2000, num_packets=20_000, seed=42)
        truth = trace.flow_sizes(KEY_SRC_IP)
        controller = FlyMonController(num_groups=1, register_size=1 << 11)
        handle = controller.add_task(armed_task(200, memory=512))
        controller.process_trace(trace)
        reported = handle.algorithm.data_plane_heavy_hitters()
        # Everything reported must at least cross via the min estimate.
        for flow in reported:
            assert handle.algorithm.query(flow) >= 200
        # And no true heavy hitter is missed (counters never undercount).
        for flow in trace.heavy_hitters(KEY_SRC_IP, 200):
            assert flow in reported

    def test_drain_clears_digests(self):
        trace = zipf_trace(num_flows=500, num_packets=10_000, seed=43)
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(armed_task(100))
        controller.process_trace(trace)
        for row in handle.rows:
            assert row.cmu.drain_digests(handle.task_id)
            assert row.cmu.peek_digests(handle.task_id) == set()

    def test_sumax_digests_work_too(self):
        trace = zipf_trace(num_flows=2000, num_packets=20_000, seed=44)
        truth = trace.heavy_hitters(KEY_SRC_IP, 200)
        controller = FlyMonController(num_groups=3)
        handle = controller.add_task(armed_task(200, algorithm="sumax_sum"))
        controller.process_trace(trace)
        reported = handle.algorithm.data_plane_heavy_hitters()
        assert f1_score(reported, truth) > 0.9
