"""Batched ternary classification vs per-packet lookup."""

import numpy as np

from repro.dataplane.tables import TernaryMatchTable, TableEntry, TernaryField
from repro.traffic.batch import PacketBatch

RNG = np.random.default_rng(7)


def _table() -> TernaryMatchTable:
    table = TernaryMatchTable("t", ("src_ip", "protocol"))
    table.insert(
        TableEntry.build(
            {"src_ip": TernaryField.prefix(0x0A000000, 8, 32)},
            action="set_task",
            args={"task_id": 1},
            priority=10,
        )
    )
    table.insert(
        TableEntry.build(
            {
                "src_ip": TernaryField.prefix(0x0A000000, 8, 32),
                "protocol": TernaryField.exact(6, 8),
            },
            action="set_task",
            args={"task_id": 2},
            priority=20,  # more specific, higher priority
        )
    )
    table.insert(
        TableEntry.build(
            {"src_ip": TernaryField.prefix(0x14000000, 8, 32)},
            action="set_task",
            args={"task_id": 3},
            priority=10,
        )
    )
    return table


def _batch(n: int = 400) -> PacketBatch:
    prefixes = RNG.choice([0x0A000000, 0x14000000, 0x1E000000], size=n)
    return PacketBatch(
        {
            "src_ip": prefixes + RNG.integers(0, 1 << 24, size=n),
            "protocol": RNG.choice([6, 17], size=n),
        }
    )


class TestMatchBatch:
    def test_winning_positions_match_scalar_lookup(self):
        table = _table()
        batch = _batch()
        positions = table.match_batch(batch)
        for i, fields in enumerate(batch.iter_fields()):
            action, args = table.lookup(fields)
            pos = int(positions[i])
            if pos == -1:
                assert action is None
            else:
                entry = table.entries[pos]
                assert (entry.action, entry.args_dict()) == (action, args)

    def test_priority_order_respected(self):
        table = _table()
        batch = PacketBatch({"src_ip": [0x0A010203], "protocol": [6]})
        positions = table.match_batch(batch)
        assert table.entries[int(positions[0])].args_dict()["task_id"] == 2


class TestClassifyBatch:
    def test_task_id_vector_matches_scalar(self):
        table = _table()
        batch = _batch()
        task_ids = table.classify_batch(batch, "task_id")
        for i, fields in enumerate(batch.iter_fields()):
            action, args = table.lookup(fields)
            want = args["task_id"] if action == "set_task" else -1
            assert int(task_ids[i]) == want

    def test_default_action_arg_applies_to_misses(self):
        table = _table()
        table.set_default("set_task", {"task_id": 99})
        batch = PacketBatch({"src_ip": [0x1E000001], "protocol": [17]})
        assert int(table.classify_batch(batch, "task_id")[0]) == 99

    def test_unmatched_packets_get_default_sentinel(self):
        table = _table()
        batch = PacketBatch({"src_ip": [0x1E000001], "protocol": [17]})
        assert int(table.classify_batch(batch, "task_id", default=-5)[0]) == -5
