"""Batched hashing must be bit-identical to the scalar reference path."""

import zlib

import numpy as np
import pytest

from repro.dataplane.crc import Crc32, POLY_CRC32C
from repro.dataplane.hashing import (
    HashFunction,
    HashMask,
    crc32_batch,
    uint64_le_bytes,
)
from repro.dataplane.phv import FieldSpec
from repro.dataplane.hashing import DynamicHashUnit
from repro.traffic.batch import PacketBatch

RNG = np.random.default_rng(42)


class TestCrcBatch:
    def test_crc32_batch_matches_zlib(self):
        data = RNG.integers(0, 256, size=(64, 6), dtype=np.uint8)
        got = crc32_batch(data, seed=0x1234)
        for i in range(len(data)):
            assert int(got[i]) == zlib.crc32(bytes(data[i]), 0x1234)

    def test_crc32_variant_batch_matches_scalar(self):
        crc = Crc32(POLY_CRC32C)
        data = RNG.integers(0, 256, size=(50, 8), dtype=np.uint8)
        got = crc.compute_batch(data)
        for i in range(len(data)):
            assert int(got[i]) == crc.compute(bytes(data[i]))

    def test_uint64_le_bytes_matches_to_bytes(self):
        values = RNG.integers(0, 1 << 48, size=20)
        mat = uint64_le_bytes(values, nbytes=6)
        for i, value in enumerate(values):
            assert bytes(mat[i]) == int(value).to_bytes(6, "little")


class TestHashFunctionBatch:
    def test_hash_int_batch_matches_scalar(self):
        fn = HashFunction(0xBEEF)
        values = RNG.integers(0, 1 << 62, size=100)
        got = fn.hash_int_batch(values, width=64)
        for i, value in enumerate(values):
            assert int(got[i]) == fn.hash_int(int(value), width=64)

    def test_hash_bytes_batch_matches_scalar(self):
        fn = HashFunction(7)
        data = RNG.integers(0, 256, size=(40, 12), dtype=np.uint8)
        got = fn.hash_bytes_batch(data)
        for i in range(len(data)):
            assert int(got[i]) == fn.hash_bytes(bytes(data[i]))


def _unit(crc=None) -> DynamicHashUnit:
    fields = (
        FieldSpec("src_ip", 32),
        FieldSpec("dst_ip", 32),
        FieldSpec("src_port", 16),
    )
    return DynamicHashUnit(0, fields, seed=0xABCD, crc=crc)


def _random_batch(n: int = 200) -> PacketBatch:
    return PacketBatch(
        {
            "src_ip": RNG.integers(0, 1 << 32, size=n),
            "dst_ip": RNG.integers(0, 1 << 32, size=n),
            "src_port": RNG.integers(0, 1 << 16, size=n),
        }
    )


class TestDynamicHashUnitBatch:
    @pytest.mark.parametrize(
        "mask",
        [
            {"src_ip": 32},
            {"src_ip": 24},  # prefix semantics: top 24 bits
            {"src_ip": 32, "src_port": 16},
            {"src_ip": 8, "dst_ip": 16, "src_port": 4},
        ],
    )
    def test_compute_batch_matches_scalar(self, mask):
        unit = _unit()
        unit.set_mask(HashMask.of(mask))
        batch = _random_batch()
        got = unit.compute_batch(batch)
        for i, fields in enumerate(batch.iter_fields()):
            assert int(got[i]) == unit.compute(fields)

    def test_unconfigured_unit_yields_zeros(self):
        unit = _unit()
        assert (unit.compute_batch(_random_batch(16)) == 0).all()

    def test_missing_column_reads_as_zero(self):
        unit = _unit()
        unit.set_mask(HashMask.of({"src_ip": 32, "src_port": 16}))
        batch = PacketBatch({"src_ip": RNG.integers(0, 1 << 32, size=10)})
        got = unit.compute_batch(batch)
        for i, src_ip in enumerate(batch.get("src_ip")):
            assert int(got[i]) == unit.compute({"src_ip": int(src_ip)})

    def test_crc_backed_unit_matches_scalar(self):
        unit = _unit(crc=Crc32(POLY_CRC32C))
        unit.set_mask(HashMask.of({"src_ip": 32, "dst_ip": 20}))
        batch = _random_batch(64)
        got = unit.compute_batch(batch)
        for i, fields in enumerate(batch.iter_fields()):
            assert int(got[i]) == unit.compute(fields)
