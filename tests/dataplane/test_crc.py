"""Unit tests for the table-driven CRC-32 variants."""

import zlib

import pytest

from repro.dataplane.crc import (
    Crc32,
    POLY_CRC32,
    POLY_CRC32C,
    STANDARD_POLYNOMIALS,
    crc_family,
)


class TestCrc32:
    def test_ieee_polynomial_matches_zlib(self):
        """Our reflected CRC-32 over the IEEE polynomial is zlib's crc32."""
        crc = Crc32(POLY_CRC32)
        for data in (b"", b"a", b"123456789", b"flymon" * 37):
            assert crc.compute(data) == zlib.crc32(data)

    def test_crc32c_check_value(self):
        """CRC-32C of '123456789' is the published check value 0xE3069283."""
        assert Crc32(POLY_CRC32C).compute(b"123456789") == 0xE3069283

    def test_polynomials_differ(self):
        data = b"same input"
        outputs = {Crc32(p).compute(data) for p in STANDARD_POLYNOMIALS}
        assert len(outputs) == len(STANDARD_POLYNOMIALS)

    def test_deterministic(self):
        crc = Crc32(POLY_CRC32C)
        assert crc.compute(b"x") == crc.compute(b"x")

    def test_invalid_polynomial(self):
        with pytest.raises(ValueError):
            Crc32(0)
        with pytest.raises(ValueError):
            Crc32(1 << 33)

    def test_single_bit_sensitivity(self):
        crc = Crc32(POLY_CRC32C)
        assert crc.compute(b"\x00\x00") != crc.compute(b"\x01\x00")


class TestCrcFamily:
    def test_family_size(self):
        assert len(crc_family(6)) == 6

    def test_standard_polynomials_first(self):
        family = crc_family(4)
        assert [c.poly for c in family] == list(STANDARD_POLYNOMIALS)

    def test_derived_polynomials_are_odd_and_distinct(self):
        family = crc_family(10)
        polys = [c.poly for c in family]
        assert len(set(polys)) == 10
        for poly in polys[4:]:
            assert poly & 1  # odd polynomial (degree-0 term present)

    def test_family_members_disagree_on_inputs(self):
        family = crc_family(8)
        data = b"distribution"
        assert len({c.compute(data) for c in family}) == 8
