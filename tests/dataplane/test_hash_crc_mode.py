"""Tests for dynamic hash units in CRC-fidelity mode."""

import pytest

from repro.dataplane.crc import Crc32, POLY_CRC32C
from repro.dataplane.hashing import DynamicHashUnit, HashMask
from repro.dataplane.phv import STANDARD_HEADER_FIELDS


class TestCrcBackedUnit:
    def make(self, poly=POLY_CRC32C):
        unit = DynamicHashUnit(
            0, STANDARD_HEADER_FIELDS, seed=0, crc=Crc32(poly)
        )
        unit.set_mask(HashMask.of({"src_ip": 32}))
        return unit

    def test_deterministic(self):
        unit = self.make()
        assert unit.compute({"src_ip": 7}) == unit.compute({"src_ip": 7})

    def test_prefix_semantics_preserved(self):
        unit = DynamicHashUnit(
            0, STANDARD_HEADER_FIELDS, seed=0, crc=Crc32(POLY_CRC32C)
        )
        unit.set_mask(HashMask.of({"src_ip": 24}))
        assert unit.compute({"src_ip": 0x0A000001}) == unit.compute(
            {"src_ip": 0x0A0000FF}
        )

    def test_different_polynomials_give_different_functions(self):
        from repro.dataplane.crc import POLY_CRC32, POLY_CRC32K

        a = self.make(POLY_CRC32)
        b = self.make(POLY_CRC32K)
        assert a.compute({"src_ip": 7}) != b.compute({"src_ip": 7})

    def test_crc_mode_spreads_uniformly(self):
        unit = self.make()
        buckets = [0] * 16
        for ip in range(2000):
            buckets[unit.compute({"src_ip": ip}) % 16] += 1
        assert min(buckets) > 60  # no empty/starved bucket at n=2000
