"""Batched register execution: duplicate-bucket RMW chains must serialize
exactly like per-packet execution, including the chain-folded fast paths."""

import numpy as np
import pytest

from repro.core.operations import (
    EXTENDED_OPERATION_SET,
    OP_COND_ADD,
    load_reduced_operation_set,
)
from repro.dataplane.register import (
    Register,
    RegisterAction,
    _occurrence_ranks,
    chain_all,
    segmented_compose_masks,
    segmented_cummax,
    segmented_cumsum,
    segmented_cumxor,
)


def _pair(size=256, bit_width=16, init=None):
    a, b = Register(size, bit_width), Register(size, bit_width)
    load_reduced_operation_set(a)
    load_reduced_operation_set(b)
    if init is not None:
        for i, value in enumerate(init):
            a.write(i, int(value))
            b.write(i, int(value))
    return a, b


def _assert_equivalent(op, idx, p1, p2, size=256, bit_width=16, init=None):
    scalar, batched = _pair(size, bit_width, init)
    want = np.array(
        [
            scalar.execute(op, int(idx[i]), int(p1[i]), int(p2[i]))
            for i in range(len(idx))
        ]
    )
    got = batched.execute_batch(op, idx, p1, p2)
    np.testing.assert_array_equal(want, got)
    np.testing.assert_array_equal(
        scalar.read_range(0, size), batched.read_range(0, size)
    )


class TestOccurrenceRanks:
    def test_ranks_count_prior_occurrences(self):
        ranks = _occurrence_ranks(np.array([7, 3, 7, 7, 3]))
        np.testing.assert_array_equal(ranks, [0, 0, 1, 2, 1])


class TestSegmentedScans:
    def test_cumsum_cumxor_cummax_reset_at_segments(self):
        x = np.array([3, 1, 4, 1, 5, 9, 2], dtype=np.int64)
        seg = np.array([True, False, False, True, False, True, False])
        np.testing.assert_array_equal(
            segmented_cumsum(x, seg), [3, 4, 8, 1, 6, 9, 11]
        )
        np.testing.assert_array_equal(
            segmented_cummax(x, seg), [3, 3, 4, 1, 5, 9, 9]
        )
        np.testing.assert_array_equal(
            segmented_cumxor(x, seg), [3, 2, 6, 1, 4, 9, 11]
        )

    def test_compose_masks_folds_and_or_chains(self):
        # segment 1: OR 0b01 then AND 0b10 -> x&0b10; segment 2: OR 0b100
        A = np.array([0xFF, 0b10, 0xFF], dtype=np.int64)
        B = np.array([0b01, 0, 0b100], dtype=np.int64)
        seg = np.array([True, False, True])
        CA, CB = segmented_compose_masks(A, B, seg)
        for x in (0, 0b11, 0b1010):
            assert ((x & CA[1]) | CB[1]) == (((x | 0b01) & 0b10))
        assert ((0 & CA[2]) | CB[2]) == 0b100

    def test_chain_all_poisons_whole_segment(self):
        ok = np.array([True, False, True, True])
        seg = np.array([True, False, True, False])
        np.testing.assert_array_equal(
            chain_all(ok, seg), [False, False, True, True]
        )


class TestExecuteBatchEquivalence:
    @pytest.mark.parametrize("op", EXTENDED_OPERATION_SET)
    def test_duplicate_heavy_chains(self, op):
        rng = np.random.default_rng(hash(op) & 0xFFFF)
        n = 800
        idx = rng.integers(0, 4, size=n) * 64  # 4 buckets, ~200-deep chains
        p1 = rng.integers(0, 1 << 16, size=n)
        p2 = rng.integers(0, 1 << 16, size=n)
        _assert_equivalent(op, idx, p1, p2)

    @pytest.mark.parametrize("op", EXTENDED_OPERATION_SET)
    def test_all_distinct_buckets(self, op):
        rng = np.random.default_rng(1)
        idx = rng.permutation(256)[:100]
        p1 = rng.integers(0, 1 << 16, size=100)
        p2 = rng.integers(0, 1 << 16, size=100)
        _assert_equivalent(op, idx, p1, p2)

    def test_cond_add_saturating_chain_falls_back_exactly(self):
        # A long chain that crosses its p2 threshold mid-way: the closed-form
        # sum is invalid there, so the chain must re-run via rank rounds.
        n = 64
        idx = np.zeros(n, dtype=np.int64)
        p1 = np.full(n, 7, dtype=np.int64)
        p2 = np.full(n, 100, dtype=np.int64)
        _assert_equivalent(OP_COND_ADD, idx, p1, p2)

    def test_cond_add_wrapping_chain_falls_back_exactly(self):
        # Increments that overflow the 8-bit bucket width force the wrap
        # check to reject the fold.
        n = 50
        idx = np.zeros(n, dtype=np.int64)
        p1 = np.full(n, 200, dtype=np.int64)
        p2 = np.full(n, 255, dtype=np.int64)
        _assert_equivalent(OP_COND_ADD, idx, p1, p2, bit_width=8)

    def test_nonzero_initial_state(self):
        rng = np.random.default_rng(3)
        init = rng.integers(0, 1 << 16, size=256)
        idx = rng.integers(0, 8, size=300) * 8
        p1 = rng.integers(0, 4, size=300)
        p2 = np.full(300, (1 << 16) - 1)
        _assert_equivalent(OP_COND_ADD, idx, p1, p2, init=init)

    def test_action_without_batch_kernel_uses_scalar_fallback(self):
        def weird(stored, p1, p2):
            return (stored * 3 + p1) % 251, stored

        a = Register(64, 16)
        b = Register(64, 16)
        a.load_action(RegisterAction("weird", weird))
        b.load_action(RegisterAction("weird", weird))
        rng = np.random.default_rng(9)
        idx = rng.integers(0, 4, size=100)
        p1 = rng.integers(0, 100, size=100)
        p2 = np.zeros(100, dtype=np.int64)
        want = np.array(
            [a.execute("weird", int(idx[i]), int(p1[i]), 0) for i in range(100)]
        )
        got = b.execute_batch("weird", idx, p1, p2)
        np.testing.assert_array_equal(want, got)
        np.testing.assert_array_equal(a.read_range(0, 64), b.read_range(0, 64))

    def test_empty_batch_is_a_noop(self):
        register = Register(64, 16)
        load_reduced_operation_set(register)
        out = register.execute_batch(
            OP_COND_ADD, np.array([], dtype=np.int64), np.array([]), np.array([])
        )
        assert len(out) == 0

    def test_unknown_action_raises(self):
        register = Register(64, 16)
        with pytest.raises(KeyError):
            register.execute_batch(
                "nope", np.array([0]), np.array([1]), np.array([0])
            )
