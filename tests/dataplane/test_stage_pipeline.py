"""Unit tests for MAU stages, the pipeline, and the PHV layout."""

import pytest

from repro.dataplane.phv import FieldSpec, Phv, PhvBudgetError, PhvLayout
from repro.dataplane.pipeline import Pipeline
from repro.dataplane.resources import STAGE_CAPACITY, ResourceVector
from repro.dataplane.stage import MauStage, StageResourceError


class TestPhvLayout:
    def test_allocation_tracks_bits(self):
        layout = PhvLayout(100)
        layout.allocate(FieldSpec("a", 32))
        assert layout.used_bits == 32 and layout.free_bits == 68

    def test_budget_enforced(self):
        layout = PhvLayout(40)
        layout.allocate(FieldSpec("a", 32))
        with pytest.raises(PhvBudgetError):
            layout.allocate(FieldSpec("b", 16))

    def test_idempotent_for_same_spec(self):
        layout = PhvLayout(64)
        layout.allocate(FieldSpec("a", 32))
        layout.allocate(FieldSpec("a", 32))
        assert layout.used_bits == 32

    def test_conflicting_width_rejected(self):
        layout = PhvLayout(64)
        layout.allocate(FieldSpec("a", 32))
        with pytest.raises(ValueError):
            layout.allocate(FieldSpec("a", 16))

    def test_free_releases_bits(self):
        layout = PhvLayout(32)
        layout.allocate(FieldSpec("a", 32))
        layout.free("a")
        layout.allocate(FieldSpec("b", 32))


class TestPhv:
    def test_values_masked_to_width(self):
        layout = PhvLayout(64)
        layout.allocate(FieldSpec("port", 16))
        phv = Phv(layout, {"port": 0x12345})
        assert phv["port"] == 0x2345

    def test_unallocated_field_rejected(self):
        phv = Phv(PhvLayout(8))
        with pytest.raises(KeyError):
            phv["missing"]

    def test_get_with_default(self):
        assert Phv(PhvLayout(8)).get("missing", 7) == 7


class TestMauStage:
    def test_allocate_and_release(self):
        stage = MauStage(0)
        stage.allocate("x", ResourceVector(salus=2))
        assert stage.used.salus == 2
        stage.release("x")
        assert stage.used.salus == 0

    def test_over_allocation_rejected(self):
        stage = MauStage(0)
        with pytest.raises(StageResourceError):
            stage.allocate("x", ResourceVector(salus=STAGE_CAPACITY.salus + 1))

    def test_duplicate_owner_rejected(self):
        stage = MauStage(0)
        stage.allocate("x", ResourceVector(salus=1))
        with pytest.raises(ValueError):
            stage.allocate("x", ResourceVector(salus=1))

    def test_hooks_run_in_order(self):
        stage = MauStage(0)
        seen = []
        stage.add_hook(lambda f: seen.append(1))
        stage.add_hook(lambda f: seen.append(2))
        stage.process({})
        assert seen == [1, 2]


class TestPipeline:
    def test_process_traverses_stages_in_order(self):
        pipe = Pipeline(num_stages=3)
        order = []
        for i, stage in enumerate(pipe.stages):
            stage.add_hook(lambda f, i=i: order.append(i))
        pipe.process({})
        assert order == [0, 1, 2]

    def test_utilization_includes_phv(self):
        pipe = Pipeline(num_stages=2)
        pipe.phv_layout.allocate(FieldSpec("k", 2048))
        util = pipe.utilization()
        assert util["phv_bits"] == pytest.approx(0.5)

    def test_total_used_aggregates(self):
        pipe = Pipeline(num_stages=2)
        pipe.stage(0).allocate("a", ResourceVector(salus=1))
        pipe.stage(1).allocate("b", ResourceVector(salus=2))
        assert pipe.total_used().salus == 3


class TestHookPairs:
    def test_remove_hook_keeps_batched_dual_paired(self):
        # Regression: hooks and their batched duals were stored in separate
        # lists, so removing one of two attachments of the same callable
        # could strip the *other* attachment's batch dual and silently
        # degrade process_batch to the scalar round-trip.
        import numpy as np

        from repro.traffic.batch import PacketBatch

        stage = MauStage(0)
        calls = []

        def hook(fields):
            fields["x"] = fields.get("x", 0) + 1

        def batch_hook(batch):
            calls.append("batch")
            batch.set("x", batch.get("x") + 1)

        stage.add_hook(hook)  # scalar-only attachment
        stage.add_hook(hook, batch_hook)  # batched attachment
        stage.remove_hook(hook)  # removes the first (scalar-only) pair
        assert stage.scalar_only_hooks() == []

        batch = PacketBatch({"x": np.zeros(4, dtype=np.int64)}, length=4)
        stage.process_batch(batch)
        assert calls == ["batch"]
        assert batch.get("x").tolist() == [1, 1, 1, 1]

    def test_remove_hook_missing_raises(self):
        stage = MauStage(0)
        with pytest.raises(ValueError):
            stage.remove_hook(lambda f: None)

    def test_hook_entries_exposes_pairs(self):
        stage = MauStage(0)
        hook = lambda f: None
        batch_hook = lambda b: None
        stage.add_hook(hook, batch_hook)
        assert stage.hook_entries() == [(hook, batch_hook)]


class TestScalarHookFallback:
    def test_unwritten_fields_do_not_materialize_columns(self):
        # Regression: the scalar fallback wrote back *every* field any row
        # dict ended up with, materializing default-0 columns for fields the
        # hook only read -- masking absent columns downstream.
        import numpy as np

        from repro.traffic.batch import PacketBatch

        stage = MauStage(0)
        stage.add_hook(lambda fields: fields.get("missing", 0))
        batch = PacketBatch({"x": np.arange(4, dtype=np.int64)}, length=4)
        stage.process_batch(batch)
        assert batch.column_names == ["x"]

    def test_partially_written_field_zero_fills_other_rows(self):
        import numpy as np

        from repro.traffic.batch import PacketBatch

        def hook(fields):
            if fields["x"] % 2:
                fields["y"] = fields["x"] * 10

        stage = MauStage(0)
        stage.add_hook(hook)
        batch = PacketBatch({"x": np.arange(4, dtype=np.int64)}, length=4)
        stage.process_batch(batch)
        assert batch.get("y").tolist() == [0, 10, 0, 30]

    def test_scalar_fallback_matches_scalar_path(self):
        import numpy as np

        from repro.traffic.batch import PacketBatch

        def hook(fields):
            fields["y"] = fields["x"] * 3 + 1

        stage = MauStage(0)
        stage.add_hook(hook)
        batch = PacketBatch({"x": np.arange(5, dtype=np.int64)}, length=5)
        stage.process_batch(batch)

        rows = [{"x": i} for i in range(5)]
        for fields in rows:
            hook(fields)
        assert batch.get("y").tolist() == [f["y"] for f in rows]

    def test_pipeline_reports_scalar_only_hooks(self):
        pipe = Pipeline(num_stages=3)
        hook = lambda f: None
        pipe.stage(1).add_hook(hook)
        assert pipe.scalar_fallback_hooks() == [(1, hook)]
        pipe.stage(1).remove_hook(hook)
        assert pipe.scalar_fallback_hooks() == []
