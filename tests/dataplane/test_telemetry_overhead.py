"""Regression guard: telemetry must be near-free when disabled.

``Pipeline.process`` is the simulator's hot path; its only concession to
telemetry is a single ``TELEMETRY.enabled`` check per packet.  This test
measures that check against the exact uninstrumented loop body and fails if
the overhead reaches 5% -- catching any accidental always-on instrumentation
(allocation, dict lookups, sampling) sneaking into the disabled path.
"""

from time import perf_counter

from repro import telemetry
from repro.dataplane.pipeline import Pipeline

PACKETS = 15_000
REPEATS = 7

#: Recorder-off budget for the flight recorder on a full batched trace run
#: (ISSUE: spans must cost <1% when the recorder is disabled).
RECORDER_BUDGET = 0.01


def _build_pipeline() -> Pipeline:
    pipeline = Pipeline()
    for stage in pipeline.stages:
        stage.add_hook(lambda fields: None)
    return pipeline


def _best_of(fn, fields, repeats=REPEATS, packets=PACKETS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        for _ in range(packets):
            fn(fields)
        best = min(best, perf_counter() - start)
    return best


def test_disabled_overhead_under_five_percent():
    pipeline = _build_pipeline()
    fields = {"src_ip": 0x0A000001, "dst_ip": 0x14000002, "src_port": 80}

    def uninstrumented(packet_fields, pipeline=pipeline):
        # Replicates Pipeline.process exactly as it was before telemetry.
        for stage in pipeline.stages:
            stage.process(packet_fields)

    telemetry.disable()
    # Warm-up both paths (bytecode caches, branch history).
    for _ in range(2_000):
        uninstrumented(fields)
        pipeline.process(fields)

    baseline = _best_of(uninstrumented, fields)
    instrumented = _best_of(pipeline.process, fields)
    overhead = instrumented / baseline - 1.0
    assert overhead < 0.05, (
        f"telemetry-disabled Pipeline.process overhead {overhead:.2%} "
        f"(baseline {baseline * 1e6:.0f}us, instrumented {instrumented * 1e6:.0f}us "
        f"per {PACKETS} packets)"
    )


def test_recorder_off_overhead_under_one_percent():
    """The flight recorder must be invisible on the Fig. 14a batched path.

    Instrumented sites are coarse (per trace run / shard / epoch), so the
    disabled cost is ``spans_per_run`` attribute checks.  Rather than trying
    to resolve a sub-0.1% wall-time delta out of scheduler noise, measure
    both factors directly: count how many recorder calls one batched trace
    replay makes (by running it once with the recorder on), micro-benchmark
    the disabled ``span()`` fast path, and require their product to stay
    under 1% of the measured run wall time.
    """
    import itertools

    import repro.core.task as task_mod
    from repro.core.controller import FlyMonController
    from repro.core.task import AttributeSpec, MeasurementTask
    from repro.traffic import zipf_trace
    from repro.traffic.flows import KEY_SRC_IP

    task_mod._task_ids = itertools.count(1)
    controller = FlyMonController(num_groups=3, place_on_pipeline=False)
    controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=2048,
            depth=3,
            algorithm="cms",
        )
    )
    trace = zipf_trace(num_flows=500, num_packets=20_000, seed=14)

    recorder = telemetry.RECORDER
    telemetry.disable_recorder()
    controller.process_trace(trace, batch_size=2048)  # warm-up
    wall = float("inf")
    for _ in range(3):
        start = perf_counter()
        controller.process_trace(trace, batch_size=2048)
        wall = min(wall, perf_counter() - start)

    # One run's worth of span calls, observed with the recorder on.
    recorder.clear()
    telemetry.enable_recorder()
    try:
        controller.process_trace(trace, batch_size=2048)
        spans_per_run = len(recorder.spans)
    finally:
        telemetry.disable_recorder()
        recorder.clear()
    assert spans_per_run >= 1  # the batched path is instrumented...
    assert spans_per_run <= 16, (
        f"{spans_per_run} spans for one batched run -- recorder sites must "
        "stay coarse (per run, never per packet/batch)"
    )

    # Disabled fast path: one attribute check returning the shared NULL_SPAN.
    calls = 200_000
    start = perf_counter()
    for _ in range(calls):
        recorder.span("probe")
    per_call = (perf_counter() - start) / calls

    overhead = spans_per_run * per_call / wall
    assert overhead < RECORDER_BUDGET, (
        f"recorder-off overhead {overhead:.4%} of the batched run "
        f"({spans_per_run} spans x {per_call * 1e9:.0f}ns vs "
        f"{wall * 1e3:.1f}ms wall)"
    )


def test_enabled_telemetry_counts_and_samples():
    """Sanity: the traced path actually records what the disabled path skips."""
    pipeline = _build_pipeline()
    fields = {"src_ip": 1}
    telemetry.reset()
    telemetry.enable(sample_interval=8)
    try:
        for _ in range(64):
            pipeline.process(fields)
        registry = telemetry.TELEMETRY.registry
        assert registry.value("flymon_pipeline_packets_total") == 64
        assert registry.value("flymon_stage_packets_total", stage="0") == 64
        spans = registry.get("flymon_pipeline_process_seconds")
        assert spans is not None and spans.count == 64 // 8
    finally:
        telemetry.disable()
        telemetry.reset()
