"""Regression guard: telemetry must be near-free when disabled.

``Pipeline.process`` is the simulator's hot path; its only concession to
telemetry is a single ``TELEMETRY.enabled`` check per packet.  This test
measures that check against the exact uninstrumented loop body and fails if
the overhead reaches 5% -- catching any accidental always-on instrumentation
(allocation, dict lookups, sampling) sneaking into the disabled path.
"""

from time import perf_counter

from repro import telemetry
from repro.dataplane.pipeline import Pipeline

PACKETS = 15_000
REPEATS = 7


def _build_pipeline() -> Pipeline:
    pipeline = Pipeline()
    for stage in pipeline.stages:
        stage.add_hook(lambda fields: None)
    return pipeline


def _best_of(fn, fields, repeats=REPEATS, packets=PACKETS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        for _ in range(packets):
            fn(fields)
        best = min(best, perf_counter() - start)
    return best


def test_disabled_overhead_under_five_percent():
    pipeline = _build_pipeline()
    fields = {"src_ip": 0x0A000001, "dst_ip": 0x14000002, "src_port": 80}

    def uninstrumented(packet_fields, pipeline=pipeline):
        # Replicates Pipeline.process exactly as it was before telemetry.
        for stage in pipeline.stages:
            stage.process(packet_fields)

    telemetry.disable()
    # Warm-up both paths (bytecode caches, branch history).
    for _ in range(2_000):
        uninstrumented(fields)
        pipeline.process(fields)

    baseline = _best_of(uninstrumented, fields)
    instrumented = _best_of(pipeline.process, fields)
    overhead = instrumented / baseline - 1.0
    assert overhead < 0.05, (
        f"telemetry-disabled Pipeline.process overhead {overhead:.2%} "
        f"(baseline {baseline * 1e6:.0f}us, instrumented {instrumented * 1e6:.0f}us "
        f"per {PACKETS} packets)"
    )


def test_enabled_telemetry_counts_and_samples():
    """Sanity: the traced path actually records what the disabled path skips."""
    pipeline = _build_pipeline()
    fields = {"src_ip": 1}
    telemetry.reset()
    telemetry.enable(sample_interval=8)
    try:
        for _ in range(64):
            pipeline.process(fields)
        registry = telemetry.TELEMETRY.registry
        assert registry.value("flymon_pipeline_packets_total") == 64
        assert registry.value("flymon_stage_packets_total", stage="0") == 64
        spans = registry.get("flymon_pipeline_process_seconds")
        assert spans is not None and spans.count == 64 // 8
    finally:
        telemetry.disable()
        telemetry.reset()
