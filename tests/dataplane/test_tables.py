"""Unit tests for match-action tables and TCAM range expansion."""

import pytest

from repro.dataplane.tables import (
    ExactMatchTable,
    TableEntry,
    TableFullError,
    TernaryField,
    TernaryMatchTable,
    range_to_ternary,
)


class TestTernaryField:
    def test_exact(self):
        tf = TernaryField.exact(5, 8)
        assert tf.matches(5) and not tf.matches(4)

    def test_wildcard_matches_everything(self):
        tf = TernaryField.wildcard()
        assert tf.matches(0) and tf.matches(2**32 - 1)

    def test_prefix(self):
        tf = TernaryField.prefix(0x0A000000, 8, 32)
        assert tf.matches(0x0AFFFFFF)
        assert not tf.matches(0x0B000000)

    def test_prefix_zero_is_wildcard(self):
        assert TernaryField.prefix(123, 0, 32).matches(0)

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            TernaryField.prefix(0, 33, 32)


class TestRangeToTernary:
    def test_power_of_two_aligned_range_is_one_entry(self):
        assert len(range_to_ternary(16, 31, 8)) == 1

    def test_full_range_is_one_entry(self):
        entries = range_to_ternary(0, 255, 8)
        assert len(entries) == 1
        assert entries[0].mask == 0

    def test_single_value(self):
        entries = range_to_ternary(7, 7, 8)
        assert len(entries) == 1
        assert entries[0].matches(7) and not entries[0].matches(6)

    def test_covers_exactly_the_range(self):
        lo, hi, width = 100, 227, 10
        entries = range_to_ternary(lo, hi, width)
        for v in range(1 << width):
            inside = any(e.matches(v) for e in entries)
            assert inside == (lo <= v <= hi), v

    def test_worst_case_bound(self):
        # Classic result: at most 2w - 2 prefixes for any range of width w.
        for lo, hi in [(1, 2**10 - 2), (3, 997), (511, 513)]:
            assert len(range_to_ternary(lo, hi, 10)) <= 2 * 10 - 2

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            range_to_ternary(5, 4, 8)
        with pytest.raises(ValueError):
            range_to_ternary(0, 256, 8)


class TestExactMatchTable:
    def test_insert_and_lookup(self):
        table = ExactMatchTable("t", ["src_ip"])
        table.insert_exact({"src_ip": 10}, {"src_ip": 32}, "act", {"x": 1})
        action, args = table.lookup({"src_ip": 10})
        assert action == "act" and args == {"x": 1}

    def test_miss_returns_default(self):
        table = ExactMatchTable("t", ["src_ip"])
        table.set_default("drop")
        assert table.lookup({"src_ip": 1}) == ("drop", {})

    def test_unknown_key_field_rejected(self):
        table = ExactMatchTable("t", ["src_ip"])
        entry = TableEntry.build({"dst_ip": TernaryField.exact(1, 32)}, "a")
        with pytest.raises(KeyError):
            table.insert(entry)

    def test_capacity_enforced(self):
        table = ExactMatchTable("t", ["src_ip"], max_entries=1)
        table.insert_exact({"src_ip": 1}, {"src_ip": 32}, "a")
        with pytest.raises(TableFullError):
            table.insert_exact({"src_ip": 2}, {"src_ip": 32}, "a")


class TestTernaryMatchTable:
    def test_priority_order(self):
        table = TernaryMatchTable("t", ["addr"])
        table.insert(
            TableEntry.build({"addr": TernaryField.wildcard()}, "low", priority=0)
        )
        table.insert(
            TableEntry.build({"addr": TernaryField.exact(5, 8)}, "high", priority=10)
        )
        assert table.lookup({"addr": 5})[0] == "high"
        assert table.lookup({"addr": 6})[0] == "low"

    def test_insert_range_counts_physical_entries(self):
        table = TernaryMatchTable("t", ["addr"])
        installed = table.insert_range("addr", 100, 227, 10, "map", {"off": 3})
        assert len(installed) == table.tcam_entry_count()
        assert table.lookup({"addr": 150})[0] == "map"
        assert table.lookup({"addr": 99})[0] is None

    def test_remove_where(self):
        table = TernaryMatchTable("t", ["addr"])
        table.insert_range("addr", 0, 63, 8, "a")
        removed = table.remove_where(lambda e: e.action == "a")
        assert removed >= 1 and len(table) == 0
