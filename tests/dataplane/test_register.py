"""Unit tests for SALU registers and register actions."""

import numpy as np
import pytest

from repro.dataplane.register import MAX_REGISTER_ACTIONS, Register, RegisterAction


def add_action():
    return RegisterAction("add", lambda stored, p1, p2: (stored + p1, stored + p1))


class TestRegisterConstruction:
    def test_requires_power_of_two_size(self):
        with pytest.raises(ValueError):
            Register(1000)

    def test_requires_valid_bit_width(self):
        with pytest.raises(ValueError):
            Register(16, bit_width=12)

    def test_total_bits(self):
        assert Register(1024, 16).total_bits == 16384


class TestActions:
    def test_action_limit_matches_tofino(self):
        reg = Register(16)
        for i in range(MAX_REGISTER_ACTIONS):
            reg.load_action(RegisterAction(f"a{i}", lambda s, p1, p2: (s, s)))
        with pytest.raises(RuntimeError):
            reg.load_action(RegisterAction("extra", lambda s, p1, p2: (s, s)))

    def test_duplicate_name_rejected(self):
        reg = Register(16)
        reg.load_action(add_action())
        with pytest.raises(ValueError):
            reg.load_action(add_action())

    def test_unknown_action_rejected(self):
        reg = Register(16)
        with pytest.raises(KeyError):
            reg.execute("nope", 0, 1, 0)

    def test_execute_updates_and_returns(self):
        reg = Register(16)
        reg.load_action(add_action())
        assert reg.execute("add", 3, 5, 0) == 5
        assert reg.read(3) == 5
        assert reg.execute("add", 3, 2, 0) == 7

    def test_values_clamped_to_bit_width(self):
        reg = Register(16, bit_width=8)
        reg.load_action(add_action())
        reg.execute("add", 0, 300, 0)
        assert reg.read(0) == 300 & 0xFF

    def test_index_wraps_to_size(self):
        reg = Register(16)
        reg.load_action(add_action())
        reg.execute("add", 16 + 3, 1, 0)
        assert reg.read(3) == 1


class TestControlPlaneAccess:
    def test_read_range_is_a_copy(self):
        reg = Register(16)
        reg.write(2, 9)
        view = reg.read_range(0, 4)
        view[2] = 0
        assert reg.read(2) == 9

    def test_read_range_bounds(self):
        reg = Register(16)
        with pytest.raises(IndexError):
            reg.read_range(8, 16)

    def test_reset_range_only_touches_range(self):
        reg = Register(16)
        reg.write(1, 5)
        reg.write(8, 7)
        reg.reset_range(0, 8)
        assert reg.read(1) == 0 and reg.read(8) == 7

    def test_full_reset(self):
        reg = Register(16)
        reg.write(0, 1)
        reg.reset()
        assert reg.read(0) == 0

    def test_negative_length_rejected(self):
        # Regression: numpy slicing silently accepted a negative length
        # (read_range(8, -4) returned an empty array, reset_range wiped
        # nothing) instead of flagging the caller's bug.
        reg = Register(16)
        with pytest.raises(IndexError):
            reg.read_range(8, -4)
        with pytest.raises(IndexError):
            reg.reset_range(0, -1)

    def test_zero_length_range_is_valid(self):
        reg = Register(16)
        assert reg.read_range(16, 0).size == 0
        reg.reset_range(0, 0)  # no-op, not an error

    def test_snapshot_and_load_cells_round_trip(self):
        reg = Register(16, bit_width=8)
        reg.write(3, 200)
        cells = reg.snapshot_cells()
        assert cells.dtype == np.int64
        cells[3] += 100  # 300 -> masked to 44 on load
        reg.load_cells(cells)
        assert reg.read(3) == 300 & 0xFF

    def test_load_cells_rejects_wrong_length(self):
        reg = Register(16)
        with pytest.raises(ValueError):
            reg.load_cells(np.zeros(8, dtype=np.int64))
