"""Unit tests for hash functions and dynamic hash units."""

import pytest

from repro.dataplane.hashing import (
    DynamicHashUnit,
    HashFunction,
    HashMask,
    hash_family,
)
from repro.dataplane.phv import STANDARD_HEADER_FIELDS


class TestHashFunction:
    def test_deterministic(self):
        fn = HashFunction(1)
        assert fn.hash_bytes(b"abc") == fn.hash_bytes(b"abc")

    def test_seed_changes_output(self):
        assert HashFunction(1).hash_bytes(b"abc") != HashFunction(2).hash_bytes(b"abc")

    def test_output_is_32_bit(self):
        for data in (b"", b"x", b"flymon" * 100):
            assert 0 <= HashFunction(7).hash_bytes(data) < 2**32

    def test_hash_int_matches_width_encoding(self):
        fn = HashFunction(3)
        assert fn.hash_int(5, width=32) == fn.hash_bytes((5).to_bytes(4, "little"))

    def test_family_members_differ(self):
        fns = hash_family(4)
        outputs = {fn.hash_bytes(b"key") for fn in fns}
        assert len(outputs) == 4

    def test_avalanche(self):
        """Flipping one input bit should flip roughly half the output bits."""
        fn = HashFunction(9)
        a = fn.hash_bytes(b"\x00\x00\x00\x00")
        b = fn.hash_bytes(b"\x01\x00\x00\x00")
        assert 8 <= bin(a ^ b).count("1") <= 24


class TestHashMask:
    def test_of_sorts_fields(self):
        mask = HashMask.of({"b": 2, "a": 1})
        assert mask.field_bits == (("a", 1), ("b", 2))

    def test_empty(self):
        assert HashMask().is_empty
        assert not HashMask.of({"src_ip": 32}).is_empty

    def test_describe(self):
        assert HashMask.of({"src_ip": 24}).describe() == "src_ip/24"


class TestDynamicHashUnit:
    def make(self):
        return DynamicHashUnit(0, STANDARD_HEADER_FIELDS, seed=99)

    def test_unconfigured_returns_zero(self):
        assert self.make().compute({"src_ip": 1}) == 0

    def test_mask_install_and_compute(self):
        unit = self.make()
        unit.set_mask(HashMask.of({"src_ip": 32}))
        h1 = unit.compute({"src_ip": 0x0A000001})
        h2 = unit.compute({"src_ip": 0x0A000002})
        assert h1 != 0 and h1 != h2

    def test_prefix_mask_ignores_low_bits(self):
        unit = self.make()
        unit.set_mask(HashMask.of({"src_ip": 24}))
        # Same /24, different host byte: identical compressed key.
        assert unit.compute({"src_ip": 0x0A000001}) == unit.compute({"src_ip": 0x0A0000FF})
        # Different /24: different key.
        assert unit.compute({"src_ip": 0x0A000101}) != unit.compute({"src_ip": 0x0A000001})

    def test_mask_on_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            self.make().set_mask(HashMask.of({"nonexistent": 8}))

    def test_mask_wider_than_field_rejected(self):
        with pytest.raises(ValueError):
            self.make().set_mask(HashMask.of({"protocol": 16}))

    def test_reconfiguration_changes_function(self):
        unit = self.make()
        unit.set_mask(HashMask.of({"src_ip": 32}))
        before = unit.compute({"src_ip": 5, "dst_ip": 9})
        unit.set_mask(HashMask.of({"dst_ip": 32}))
        after = unit.compute({"src_ip": 5, "dst_ip": 9})
        assert before != after

    def test_multi_field_mask_uses_all_fields(self):
        unit = self.make()
        unit.set_mask(HashMask.of({"src_ip": 32, "dst_ip": 32}))
        base = unit.compute({"src_ip": 1, "dst_ip": 2})
        assert unit.compute({"src_ip": 1, "dst_ip": 3}) != base
        assert unit.compute({"src_ip": 2, "dst_ip": 2}) != base

    def test_clear_mask(self):
        unit = self.make()
        unit.set_mask(HashMask.of({"src_ip": 32}))
        unit.clear_mask()
        assert unit.compute({"src_ip": 1}) == 0

    def test_missing_field_treated_as_zero(self):
        unit = self.make()
        unit.set_mask(HashMask.of({"src_ip": 32}))
        assert unit.compute({}) == unit.compute({"src_ip": 0})
