"""Unit tests for the sharded execution layer (repro.dataplane.sharding)."""

import itertools
import os

import numpy as np
import pytest

import repro.core.task as task_mod
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.dataplane.sharding import (
    LAW_MAX,
    LAW_OR,
    LAW_REPLAY,
    LAW_SUM,
    GroupReplicaSpec,
    ShardJournal,
    ShardingError,
    default_workers,
    run_sharded,
    shard_ranges,
)
from repro.dataplane.switch import datapath_groups
from repro.traffic import zipf_trace
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP


def _controller(tasks, **kwargs):
    task_mod._task_ids = itertools.count(1)
    kwargs.setdefault("num_groups", 3)
    kwargs.setdefault("place_on_pipeline", False)
    controller = FlyMonController(**kwargs)
    handles = [controller.add_task(task) for task in tasks]
    return controller, handles


def _cms_task(**kwargs):
    kwargs.setdefault("key", KEY_SRC_IP)
    kwargs.setdefault("attribute", AttributeSpec.frequency())
    kwargs.setdefault("memory", 2048)
    kwargs.setdefault("depth", 3)
    kwargs.setdefault("algorithm", "cms")
    return MeasurementTask(**kwargs)


def _assert_same_state(reference, other):
    for group_r, group_o in zip(reference.groups, other.groups):
        for cmu_r, cmu_o in zip(group_r.cmus, group_o.cmus):
            np.testing.assert_array_equal(
                cmu_r.register.read_range(0, cmu_r.register_size),
                cmu_o.register.read_range(0, cmu_o.register_size),
            )
            for task_id in cmu_r.task_ids:
                assert cmu_r.peek_digests(task_id) == cmu_o.peek_digests(task_id)


class TestShardRanges:
    def test_even_split(self):
        assert shard_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_tail_spreads_over_first_shards(self):
        assert shard_ranges(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_workers_than_rows_drops_empty_shards(self):
        ranges = shard_ranges(3, 8)
        assert ranges == [(0, 1), (1, 2), (2, 3)]

    def test_zero_rows(self):
        assert shard_ranges(0, 4) == []

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            shard_ranges(-1, 2)

    @pytest.mark.parametrize("total,workers", [(1, 1), (17, 3), (100, 7), (5, 5)])
    def test_partition_properties(self, total, workers):
        ranges = shard_ranges(total, workers)
        assert ranges[0][0] == 0 and ranges[-1][1] == total
        sizes = [stop - start for start, stop in ranges]
        assert all(size > 0 for size in sizes)
        assert max(sizes) - min(sizes) <= 1
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start


class TestDefaultWorkers:
    def test_unset_is_one(self, monkeypatch):
        monkeypatch.delenv("FLYMON_WORKERS", raising=False)
        assert default_workers() == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("FLYMON_WORKERS", "4")
        assert default_workers() == 4

    @pytest.mark.parametrize("raw", ["", "zero", "-3", "0"])
    def test_invalid_or_nonpositive_clamps_to_one(self, monkeypatch, raw):
        monkeypatch.setenv("FLYMON_WORKERS", raw)
        assert default_workers() == 1


class TestShardJournal:
    def test_offset_globalizes_rows(self):
        journal = ShardJournal(tracked=None, offset=100)
        journal.record(0, 0, 1, np.array([0, 3]), np.array([5, 6]), np.array([1, 1]), np.array([0, 0]))
        rows, index, p1, p2 = journal.entries((0, 0, 1))
        np.testing.assert_array_equal(rows, [100, 103])
        np.testing.assert_array_equal(index, [5, 6])

    def test_tracked_filter(self):
        journal = ShardJournal(tracked=frozenset({(0, 0, 1)}))
        assert journal.wants(0, 0, 1)
        assert not journal.wants(0, 0, 2)
        assert journal.entries((0, 0, 2)) is None

    def test_absorb_preserves_order(self):
        a = ShardJournal(tracked=None)
        a.record(0, 0, 1, np.array([0]), np.array([1]), np.array([2]), np.array([3]))
        b = ShardJournal(tracked=None, offset=10)
        b.record(0, 0, 1, np.array([0]), np.array([9]), np.array([8]), np.array([7]))
        merged = ShardJournal(tracked=None)
        merged.absorb(a)
        merged.absorb(b)
        rows, index, p1, p2 = merged.entries((0, 0, 1))
        np.testing.assert_array_equal(rows, [0, 10])
        np.testing.assert_array_equal(index, [1, 9])


class TestReplicaSpecs:
    def test_replica_matches_original_per_packet(self):
        controller, _ = _controller([_cms_task()])
        trace = zipf_trace(num_flows=64, num_packets=500, seed=5)
        group = controller.groups[0]
        replica = GroupReplicaSpec.from_group(group).build()
        assert replica.seed_base == group.seed_base
        assert [cmu.task_ids for cmu in replica.cmus] == [
            cmu.task_ids for cmu in group.cmus
        ]
        for fields in trace.iter_fields():
            group.process(fields)
        for fields in trace.iter_fields():
            replica.process(fields)
        for cmu, cmu_replica in zip(group.cmus, replica.cmus):
            np.testing.assert_array_equal(
                cmu.register.read_range(0, cmu.register_size),
                cmu_replica.register.read_range(0, cmu_replica.register_size),
            )

    def test_spec_is_picklable(self):
        import pickle

        controller, _ = _controller([_cms_task(threshold=50)])
        specs = [GroupReplicaSpec.from_group(g) for g in controller.groups]
        rebuilt = pickle.loads(pickle.dumps(specs))
        assert [s.group_id for s in rebuilt] == [s.group_id for s in specs]
        rebuilt[0].build()  # must install cleanly after the round-trip


class TestMergeLaws:
    def test_cms_is_sum(self):
        controller, _ = _controller([_cms_task()])
        trace = zipf_trace(num_flows=32, num_packets=64, seed=1)
        report = run_sharded(controller.groups, trace, workers=2, backend="serial")
        assert set(report.merge_laws.values()) == {LAW_SUM}

    def test_armed_cms_is_replay(self):
        controller, _ = _controller([_cms_task(threshold=10)])
        trace = zipf_trace(num_flows=32, num_packets=64, seed=1)
        report = run_sharded(controller.groups, trace, workers=2, backend="serial")
        assert set(report.merge_laws.values()) == {LAW_REPLAY}

    def test_max_and_or_laws(self):
        tasks = [
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.maximum("queue_length"),
                memory=256,
                depth=2,
                algorithm="sumax_max",
            ),
            MeasurementTask(
                key=KEY_DST_IP,
                attribute=AttributeSpec.existence(),
                memory=1024,
                depth=2,
                algorithm="bloom",
            ),
        ]
        controller, _ = _controller(tasks)
        trace = zipf_trace(num_flows=32, num_packets=64, seed=1)
        report = run_sharded(controller.groups, trace, workers=2, backend="serial")
        assert set(report.merge_laws.values()) == {LAW_MAX, LAW_OR}

    def test_exact_exports_forces_replay(self):
        controller, _ = _controller([_cms_task()])
        trace = zipf_trace(num_flows=32, num_packets=64, seed=1)
        report = run_sharded(
            controller.groups, trace, workers=2, backend="serial", exact_exports=True
        )
        assert set(report.merge_laws.values()) == {LAW_REPLAY}
        assert report.exports is not None


class TestChainedFallback:
    def test_chained_task_falls_back_sequential(self):
        task = MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=1024,
            depth=2,
            algorithm="sumax_sum",
        )
        controller, _ = _controller([task])
        trace = zipf_trace(num_flows=64, num_packets=500, seed=2)
        report = run_sharded(controller.groups, trace, workers=4)
        assert report.fallback is not None
        assert "chained" in report.fallback
        assert report.backend == "sequential"
        assert report.shards == 0

        reference, _ = _controller([task])
        reference.process_trace(trace, batch_size=None)
        _assert_same_state(reference, controller)

    def test_empty_trace_falls_back(self):
        from repro.traffic import Trace

        controller, _ = _controller([_cms_task()])
        report = run_sharded(controller.groups, Trace.empty(), workers=4)
        assert report.fallback == "empty trace"
        assert report.packets == 0


class TestBackends:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_matches_scalar_reference(self, backend):
        trace = zipf_trace(num_flows=200, num_packets=3_000, seed=7)
        tasks = [_cms_task(threshold=40)]
        reference, _ = _controller(tasks)
        reference.process_trace(trace, batch_size=None)
        sharded, _ = _controller(tasks)
        report = run_sharded(sharded.groups, trace, workers=2, backend=backend)
        assert report.fallback is None
        _assert_same_state(reference, sharded)

    def test_unknown_backend_rejected(self):
        controller, _ = _controller([_cms_task()])
        trace = zipf_trace(num_flows=8, num_packets=16, seed=0)
        with pytest.raises(ShardingError):
            run_sharded(controller.groups, trace, workers=2, backend="gpu")

    def test_env_backend_selection(self, monkeypatch):
        monkeypatch.setenv("FLYMON_SHARD_BACKEND", "thread")
        controller, _ = _controller([_cms_task()])
        trace = zipf_trace(num_flows=32, num_packets=512, seed=3)
        report = run_sharded(controller.groups, trace, workers=2)
        assert report.backend == "thread"

    def test_single_shard_runs_serially(self):
        controller, _ = _controller([_cms_task()])
        trace = zipf_trace(num_flows=8, num_packets=16, seed=0)
        report = run_sharded(controller.groups, trace, workers=1, backend="process")
        assert report.shards == 1
        assert report.backend == "serial"


class TestControllerAndSwitchRouting:
    def test_process_trace_workers_routes_sharded(self):
        trace = zipf_trace(num_flows=100, num_packets=2_000, seed=9)
        reference, ref_handles = _controller([_cms_task()])
        reference.process_trace(trace, batch_size=None)
        sharded, handles = _controller([_cms_task()])
        sharded.process_trace(trace, workers=4)
        _assert_same_state(reference, sharded)
        for ref, other in zip(ref_handles, handles):
            for row_r, row_o in zip(ref.read_rows(), other.read_rows()):
                np.testing.assert_array_equal(row_r, row_o)

    def test_placed_pipeline_groups_discoverable_and_all_batched(self):
        controller, _ = _controller(
            [_cms_task()], num_groups=3, place_on_pipeline=True
        )
        groups = datapath_groups(controller.pipeline)
        assert [g.group_id for g in groups] == [0, 1, 2]
        # Sharded workers drive the groups directly; the placed pipeline must
        # not hide any scalar-only hook that would diverge from that path.
        assert controller.pipeline.scalar_fallback_hooks() == []

    def test_sharded_on_placed_pipeline(self):
        trace = zipf_trace(num_flows=100, num_packets=2_000, seed=11)
        reference, _ = _controller([_cms_task()], place_on_pipeline=True)
        reference.process_trace(trace, batch_size=512)
        sharded, _ = _controller([_cms_task()], place_on_pipeline=True)
        report = sharded.process_trace_sharded(trace, workers=3, backend="serial")
        assert report.fallback is None
        _assert_same_state(reference, sharded)


class TestExports:
    def test_sharded_exports_match_sequential_for_replayed_tasks(self):
        trace = zipf_trace(num_flows=64, num_packets=1_000, seed=13)
        tasks = [_cms_task(threshold=30, memory=512)]
        reference, _ = _controller(tasks)
        ref_report = run_sharded(
            reference.groups, trace, workers=1, backend="serial", collect_exports=True
        )
        sharded, _ = _controller(tasks)
        report = run_sharded(
            sharded.groups, trace, workers=4, backend="serial", exact_exports=True
        )
        assert set(report.exports) == set(ref_report.exports)
        for name in ref_report.exports:
            np.testing.assert_array_equal(
                report.exports[name], ref_report.exports[name], err_msg=name
            )


class TestShardTimings:
    """Per-shard phase timings surfaced on ShardRunReport (flight recorder
    satellite): always populated, recorder on or off."""

    def test_report_timing_and_shard_timings_populated(self):
        trace = zipf_trace(num_flows=100, num_packets=2_000, seed=5)
        controller, _ = _controller([_cms_task()])
        report = run_sharded(controller.groups, trace, workers=3, backend="serial")
        timing = report.timing
        assert set(timing) == {
            "plan_ms", "sync_ms", "dispatch_ms", "merge_ms", "total_ms"
        }
        assert timing["total_ms"] > 0.0
        assert timing["dispatch_ms"] > 0.0
        assert len(report.shard_timings) == 3
        for i, record in enumerate(report.shard_timings):
            assert record["shard"] == i
            assert record["rows"] > 0
            assert record["dispatch_ms"] > 0.0
            assert record["build_ms"] >= 0.0
            assert record["compute_ms"] > 0.0
            assert record["transport_ms"] >= 0.0
            assert record["retried"] is False
            assert record["retries"] == 0
            assert record["retry_ms"] == 0.0
            assert "_submit_pc" not in record  # private field stripped
        assert sum(r["rows"] for r in report.shard_timings) == len(trace)

    def test_thread_backend_dispatch_covers_worker_phases(self):
        trace = zipf_trace(num_flows=100, num_packets=2_000, seed=6)
        controller, _ = _controller([_cms_task()])
        report = run_sharded(controller.groups, trace, workers=2, backend="thread")
        for record in report.shard_timings:
            # dispatch (submit->result) bounds the worker-measured phases;
            # transport is exactly the gap, clamped at zero.
            assert record["transport_ms"] == pytest.approx(
                max(
                    0.0,
                    record["dispatch_ms"]
                    - record["build_ms"]
                    - record["compute_ms"],
                )
            )

    def test_recovered_shard_reports_retry_timings(self):
        from repro.faults import FAULTS, SITE_SHARD_CRASH

        trace = zipf_trace(num_flows=100, num_packets=2_000, seed=7)
        controller, _ = _controller([_cms_task()])
        FAULTS.arm(SITE_SHARD_CRASH, hit=2)  # second shard dispatch fails
        try:
            report = run_sharded(
                controller.groups, trace, workers=2, backend="thread"
            )
        finally:
            FAULTS.reset()
        assert report.retries >= 1
        retried = [r for r in report.shard_timings if r["retried"]]
        assert retried, "no shard_timings record marked retried"
        for record in retried:
            assert record["retries"] >= 1
            assert record["retry_ms"] > 0.0
        clean = [r for r in report.shard_timings if not r["retried"]]
        assert all(r["retry_ms"] == 0.0 for r in clean)

    def test_sequential_fallback_still_reports_timing(self):
        task = MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=1024,
            depth=2,
            algorithm="sumax_sum",  # chained -> sequential fallback
        )
        trace = zipf_trace(num_flows=50, num_packets=500, seed=8)
        controller, _ = _controller([task])
        report = run_sharded(controller.groups, trace, workers=4)
        assert report.fallback is not None
        assert report.shard_timings == []
        assert report.timing["total_ms"] > 0.0

    def test_recorder_captures_shard_phase_spans(self):
        from repro.telemetry import RECORDER, disable_recorder, enable_recorder

        trace = zipf_trace(num_flows=100, num_packets=2_000, seed=9)
        controller, _ = _controller([_cms_task()])
        RECORDER.clear()
        enable_recorder()
        try:
            run_sharded(controller.groups, trace, workers=2, backend="thread")
            names = [s.name for s in RECORDER.spans]
        finally:
            disable_recorder()
            RECORDER.clear()
        for expected in (
            "shard.run",
            "shard.plan",
            "shard.dispatch",
            "shard.merge",
            "shard.worker",
            "shard.compute",
        ):
            assert expected in names, f"missing span {expected}: {names}"
        assert names.count("shard.worker") == 2
