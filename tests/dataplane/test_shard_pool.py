"""Persistent shard pool: resident replicas, deltas, shm, and degradation.

The pool's contract is "bit-identical to the scalar reference, always":
warm replicas fed by control-plane deltas and shared-memory packet windows
must produce exactly the state a packet-by-packet replay produces, run
after run, across rule mutations, epoch seals, and undersized shm windows.
The tests here drive the pool through :meth:`FlyMonController.
process_trace_sharded` (the path everything else uses) and through the
pool object directly where a property is easier to pin down.
"""

import itertools
import multiprocessing

import numpy as np
import pytest

import repro.core.task as task_mod
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.dataplane.shard_pool import PersistentShardPool, shm_rows
from repro.dataplane.sharding import (
    RUNTIME_EPHEMERAL,
    RUNTIME_PERSISTENT,
    ShardingError,
    run_sharded,
    shard_runtime,
)
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP
from repro.traffic.generators import zipf_trace


def _cms_task(**kwargs):
    base = dict(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=2048,
        depth=3,
        algorithm="cms",
    )
    base.update(kwargs)
    return MeasurementTask(**base)


def _hll_task():
    return MeasurementTask(
        key=KEY_DST_IP,
        attribute=AttributeSpec.distinct(KEY_SRC_IP),
        memory=1024,
        depth=1,
        algorithm="hll",
    )


def _controller(tasks):
    task_mod._task_ids = itertools.count(1)
    controller = FlyMonController(num_groups=3, place_on_pipeline=False)
    handles = [controller.add_task(task) for task in tasks]
    return controller, handles


def _state(controller):
    cells = []
    digests = []
    for group in controller.groups:
        for cmu in group.cmus:
            cells.append(cmu.register.read_range(0, cmu.register_size).copy())
            for task_id in sorted(cmu.task_plans()):
                digests.append((task_id, frozenset(cmu.peek_digests(task_id))))
    return cells, digests

def _assert_state_equal(a, b):
    cells_a, digests_a = a
    cells_b, digests_b = b
    assert len(cells_a) == len(cells_b)
    for x, y in zip(cells_a, cells_b):
        np.testing.assert_array_equal(x, y)
    assert digests_a == digests_b


@pytest.fixture
def trace():
    return zipf_trace(num_flows=500, num_packets=6001, seed=11)


# -- runtime resolution ------------------------------------------------------


def test_runtime_defaults_to_ephemeral(monkeypatch):
    monkeypatch.delenv("FLYMON_SHARD_RUNTIME", raising=False)
    assert shard_runtime() == RUNTIME_EPHEMERAL


def test_runtime_env_var(monkeypatch):
    monkeypatch.setenv("FLYMON_SHARD_RUNTIME", "persistent")
    assert shard_runtime() == RUNTIME_PERSISTENT
    # The env path is lenient: garbage falls back to the default rather
    # than crashing a run that never asked for a runtime.
    monkeypatch.setenv("FLYMON_SHARD_RUNTIME", "warp-drive")
    assert shard_runtime() == RUNTIME_EPHEMERAL


def test_runtime_explicit_argument_is_strict():
    assert shard_runtime("persistent") == RUNTIME_PERSISTENT
    with pytest.raises(ShardingError):
        shard_runtime("warp-drive")


# -- warm-pool bit identity --------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_pool_reuse_bit_identical(trace, workers):
    scalar, _ = _controller([_cms_task(threshold=80), _hll_task()])
    pooled, _ = _controller([_cms_task(threshold=80), _hll_task()])
    try:
        for run in range(2):
            scalar.process_trace(trace)
            report = pooled.process_trace_sharded(
                trace, workers=workers, backend="process", runtime="persistent"
            )
            assert report.runtime == RUNTIME_PERSISTENT
            assert report.fallback is None
            if run == 1:
                # The replicas were built on run 0 and stayed resident.
                assert all(
                    t["build_ms"] == 0.0 for t in report.shard_timings
                )
            _assert_state_equal(_state(scalar), _state(pooled))
    finally:
        pooled.close_shard_pool()


def test_pool_survives_rule_mutations(trace):
    """add/remove/filter-update between runs ship as deltas, not rebuilds."""
    ops = [
        ("run",),
        ("add", lambda: _cms_task(memory=512, depth=2)),
        ("run",),
        ("filter", TaskFilter.of(protocol=(6, 8))),
        ("run",),
        ("remove", 0),
        ("run",),
    ]
    scalar, scalar_handles = _controller([_cms_task(threshold=80), _hll_task()])
    pooled, pooled_handles = _controller([_cms_task(threshold=80), _hll_task()])

    def apply(controller, handles, op):
        if op[0] == "add":
            handles.append(controller.add_task(op[1]()))
        elif op[0] == "filter":
            controller.update_task_filter(handles[0], op[1])
        elif op[0] == "remove":
            controller.remove_task(handles.pop(op[1]))

    try:
        for step, op in enumerate(ops):
            # Task ids are process-global and feed the sampling hash; pin
            # the counter before each mutation so both controllers' added
            # tasks draw identical ids.
            task_mod._task_ids = itertools.count(100 + 10 * step)
            apply(scalar, scalar_handles, op)
            task_mod._task_ids = itertools.count(100 + 10 * step)
            apply(pooled, pooled_handles, op)
            if op[0] == "run":
                scalar.process_trace(trace)
                report = pooled.process_trace_sharded(
                    trace, workers=2, backend="process", runtime="persistent"
                )
                assert report.runtime == RUNTIME_PERSISTENT
                _assert_state_equal(_state(scalar), _state(pooled))
        pool = pooled._shard_pool
        assert pool is not None and not pool.closed
    finally:
        pooled.close_shard_pool()


def test_chunked_rounds_with_small_shm_window(monkeypatch, trace):
    """Input windows smaller than a shard force multi-round streaming."""
    monkeypatch.setenv("FLYMON_SHARD_SHM_ROWS", "512")
    assert shm_rows() == 512
    scalar, _ = _controller([_cms_task(threshold=60)])
    pooled, _ = _controller([_cms_task(threshold=60)])
    try:
        scalar.process_trace(trace)
        report = pooled.process_trace_sharded(
            trace, workers=2, backend="process", runtime="persistent"
        )
        assert report.runtime == RUNTIME_PERSISTENT
        _assert_state_equal(_state(scalar), _state(pooled))
    finally:
        pooled.close_shard_pool()


def test_shm_rows_floor(monkeypatch):
    monkeypatch.setenv("FLYMON_SHARD_SHM_ROWS", "3")
    assert shm_rows() >= 64
    monkeypatch.setenv("FLYMON_SHARD_SHM_ROWS", "not-a-number")
    assert shm_rows() == 1 << 16


# -- graceful degradation ----------------------------------------------------


def test_fork_unavailable_degrades_to_threads(monkeypatch, trace):
    monkeypatch.setattr(
        multiprocessing, "get_all_start_methods", lambda: ["spawn"]
    )
    scalar, _ = _controller([_cms_task(threshold=80)])
    pooled, _ = _controller([_cms_task(threshold=80)])
    try:
        scalar.process_trace(trace)
        report = pooled.process_trace_sharded(
            trace, workers=2, backend="process", runtime="persistent"
        )
        # Never a crash: the pool runs in thread mode and says why.
        assert report.runtime == RUNTIME_PERSISTENT
        assert report.backend == "thread"
        assert report.degraded is not None
        assert "fork" in report.degraded
        _assert_state_equal(_state(scalar), _state(pooled))
    finally:
        pooled.close_shard_pool()


def test_serial_backend_skips_the_pool(trace):
    controller, _ = _controller([_cms_task(threshold=80)])
    report = controller.process_trace_sharded(
        trace, workers=2, backend="serial", runtime="persistent"
    )
    assert report.runtime == RUNTIME_EPHEMERAL
    assert report.degraded is not None
    assert controller._shard_pool is None


def test_undersized_pool_degrades_to_ephemeral(trace):
    controller, _ = _controller([_cms_task(threshold=80)])
    pool = controller.shard_pool(2, backend="process")
    try:
        report = run_sharded(
            controller.groups,
            trace,
            workers=4,
            backend="process",
            runtime="persistent",
            pool=pool,
        )
        assert report.runtime == RUNTIME_EPHEMERAL
        assert "pool sized for 2" in report.degraded
    finally:
        controller.close_shard_pool()


def test_controller_resizes_pool_on_worker_change(trace):
    controller, _ = _controller([_cms_task(threshold=80)])
    try:
        controller.process_trace_sharded(
            trace, workers=2, backend="process", runtime="persistent"
        )
        first = controller._shard_pool
        assert first.workers == 2
        report = controller.process_trace_sharded(
            trace, workers=4, backend="process", runtime="persistent"
        )
        assert report.runtime == RUNTIME_PERSISTENT
        second = controller._shard_pool
        assert second.workers == 4
        assert first.closed
    finally:
        controller.close_shard_pool()


# -- epoch seal + lifecycle --------------------------------------------------


def test_seal_epoch_counts_and_keeps_workers(trace):
    controller, _ = _controller([_cms_task(threshold=80)])
    try:
        controller.process_trace_sharded(
            trace, workers=2, backend="process", runtime="persistent"
        )
        pool = controller._shard_pool
        before = pool.pids()
        pool.seal_epoch(0)
        pool.seal_epoch(1)
        assert pool.seals == 2
        assert pool.pids() == before
        # The pool still answers runs after sealing.
        report = controller.process_trace_sharded(
            trace, workers=2, backend="process", runtime="persistent"
        )
        assert report.runtime == RUNTIME_PERSISTENT
    finally:
        controller.close_shard_pool()


def test_close_is_idempotent_and_final(trace):
    controller, _ = _controller([_cms_task(threshold=80)])
    controller.process_trace_sharded(
        trace, workers=2, backend="process", runtime="persistent"
    )
    pool = controller._shard_pool
    controller.close_shard_pool()
    assert pool.closed
    controller.close_shard_pool()  # no-op, no raise
    # A run after close transparently gets a fresh pool.
    report = controller.process_trace_sharded(
        trace, workers=2, backend="process", runtime="persistent"
    )
    assert report.runtime == RUNTIME_PERSISTENT
    assert controller._shard_pool is not pool
    controller.close_shard_pool()


def test_direct_pool_sync_counts_deltas(trace):
    controller, handles = _controller([_cms_task(threshold=80), _hll_task()])
    pool = PersistentShardPool(controller.groups, workers=2, backend="process")
    try:
        assert pool.sync() == 0  # mirror already current at build time
        task_mod._task_ids = itertools.count(50)
        controller.add_task(_cms_task(memory=512, depth=2))
        ops = pool.sync()
        assert ops > 0
        assert pool.sync() == 0  # converged
    finally:
        pool.close()
