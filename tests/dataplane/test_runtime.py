"""Unit tests for the runtime-rule API and its latency model."""

import pytest

from repro.dataplane.runtime import (
    HASH_MASK_RULE_MS,
    RULE_KIND_HASH_MASK,
    RULE_KIND_TABLE,
    RuntimeApi,
    RuntimeRule,
    SOFTWARE_BASE_MS,
    TABLE_RULE_BATCHED_MS,
    TABLE_RULE_SINGLE_MS,
)


def table_rule(log, tag):
    return RuntimeRule(
        kind=RULE_KIND_TABLE,
        target="t",
        description=tag,
        apply=lambda: log.append(("apply", tag)),
        undo=lambda: log.append(("undo", tag)),
    )


class TestLatencyModel:
    def test_unbatched_costs_full_rates(self):
        assert RuntimeApi.model_latency(2, 1, batch=False) == pytest.approx(
            2 * TABLE_RULE_SINGLE_MS + HASH_MASK_RULE_MS
        )

    def test_batched_table_rules_amortize(self):
        batched = RuntimeApi.model_latency(10, 0, batch=True)
        unbatched = RuntimeApi.model_latency(10, 0, batch=False)
        assert batched < unbatched
        assert batched == pytest.approx(SOFTWARE_BASE_MS + 10 * TABLE_RULE_BATCHED_MS)

    def test_first_hash_mask_pays_full_cost(self):
        with_mask = RuntimeApi.model_latency(0, 1, batch=True)
        assert with_mask >= HASH_MASK_RULE_MS

    def test_empty_install_is_free(self):
        assert RuntimeApi.model_latency(0, 0) == 0.0

    def test_millisecond_scale(self):
        """§5.1: every algorithm deploys well within 100 ms."""
        assert RuntimeApi.model_latency(40, 2, batch=True) < 100


class TestRuntimeApi:
    def test_install_applies_rules_and_advances_clock(self):
        api = RuntimeApi()
        log = []
        report = api.install([table_rule(log, "a"), table_rule(log, "b")])
        assert [t for _, t in log] == ["a", "b"]
        assert report.rules_installed == 2
        assert api.now_ms == pytest.approx(report.latency_ms)

    def test_remove_deployment_undoes_in_reverse(self):
        api = RuntimeApi()
        log = []
        api.install([table_rule(log, "a"), table_rule(log, "b")], deployment="d")
        log.clear()
        api.remove_deployment("d")
        assert log == [("undo", "b"), ("undo", "a")]

    def test_remove_unknown_deployment_is_noop(self):
        api = RuntimeApi()
        report = api.remove_deployment("ghost")
        assert report.rules_installed == 0

    def test_hash_mask_rules_counted_separately(self):
        api = RuntimeApi()
        rule = RuntimeRule(
            kind=RULE_KIND_HASH_MASK, target="h", description="", apply=lambda: None
        )
        report = api.install([rule])
        assert report.hash_mask_rules == 1 and report.table_rules == 0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            RuntimeRule(kind="bogus", target="", description="", apply=lambda: None)
