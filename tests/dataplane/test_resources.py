"""Unit tests for the resource-vector algebra and stage capacities."""

import pytest

from repro.dataplane.resources import (
    NUM_STAGES,
    STAGE_CAPACITY,
    ResourceVector,
    pipeline_capacity,
    sram_blocks_for,
)


class TestResourceVector:
    def test_addition_is_elementwise(self):
        a = ResourceVector(hash_units=1, salus=2)
        b = ResourceVector(hash_units=3, vliw=4)
        c = a + b
        assert c.hash_units == 4
        assert c.salus == 2
        assert c.vliw == 4

    def test_subtraction(self):
        a = ResourceVector(tcam_blocks=10)
        b = ResourceVector(tcam_blocks=4)
        assert (a - b).tcam_blocks == 6

    def test_scalar_multiplication_both_sides(self):
        v = ResourceVector(salus=2) * 3
        assert v.salus == 6
        assert (2 * ResourceVector(vliw=5)).vliw == 10

    def test_fits_within_true_on_equal(self):
        assert STAGE_CAPACITY.fits_within(STAGE_CAPACITY)

    def test_fits_within_false_when_any_dimension_exceeds(self):
        demand = ResourceVector(salus=STAGE_CAPACITY.salus + 1)
        assert not demand.fits_within(STAGE_CAPACITY)

    def test_utilization_fractions(self):
        demand = ResourceVector(hash_units=3, salus=3)
        util = demand.utilization(STAGE_CAPACITY)
        assert util["hash_units"] == pytest.approx(0.5)
        assert util["salus"] == pytest.approx(0.75)

    def test_utilization_zero_capacity_is_zero(self):
        util = ResourceVector(phv_bits=10).utilization(STAGE_CAPACITY)
        assert util["phv_bits"] == 0.0

    def test_zero_vector(self):
        assert ResourceVector.zero().as_tuple() == (0,) * 7


class TestCalibration:
    """The Figure 8 percentages must fall out of the capacity constants."""

    def test_compression_hash_share_is_half(self):
        assert 3 / STAGE_CAPACITY.hash_units == pytest.approx(0.5)

    def test_operation_salu_share_is_three_quarters(self):
        assert 3 / STAGE_CAPACITY.salus == pytest.approx(0.75)

    def test_initialization_vliw_share_is_quarter(self):
        assert 8 / STAGE_CAPACITY.vliw == pytest.approx(0.25)

    def test_preparation_tcam_share_is_half(self):
        assert 12 / STAGE_CAPACITY.tcam_blocks == pytest.approx(0.5)

    def test_initialization_tcam_share_is_eighth(self):
        assert 3 / STAGE_CAPACITY.tcam_blocks == pytest.approx(0.125)


class TestPipelineCapacity:
    def test_aggregates_stage_resources(self):
        cap = pipeline_capacity()
        assert cap.salus == NUM_STAGES * STAGE_CAPACITY.salus

    def test_phv_is_pipeline_wide(self):
        assert pipeline_capacity().phv_bits == 4096

    def test_custom_stage_count(self):
        assert pipeline_capacity(4).hash_units == 4 * STAGE_CAPACITY.hash_units


class TestSramBlocks:
    def test_exact_block(self):
        # 8192 buckets x 16 bits = 16 KB = one block.
        assert sram_blocks_for(8192, 16) == pytest.approx(1.0)

    def test_scales_with_bit_width(self):
        assert sram_blocks_for(8192, 32) == pytest.approx(2.0)

    def test_zero_buckets(self):
        assert sram_blocks_for(0, 32) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sram_blocks_for(-1, 16)
