"""Unit tests for the Tofino switch model and Figure 2's static footprints."""

import pytest

from repro.dataplane.switch import (
    FIGURE2_SKETCHES,
    StaticSketchSpec,
    TofinoSwitch,
    static_sketch_utilization,
)


class TestTofinoSwitch:
    def test_bare_switch_starts_empty(self):
        switch = TofinoSwitch()
        assert all(v == 0.0 for v in switch.utilization().values())

    def test_baseline_charges_every_resource(self):
        switch = TofinoSwitch(with_baseline=True)
        util = switch.utilization()
        for resource, fraction in util.items():
            assert fraction > 0.0, resource
            assert fraction < 1.0, resource

    def test_packet_traversal(self):
        switch = TofinoSwitch()
        seen = []
        switch.pipeline.stage(0).add_hook(lambda f: seen.append(f["src_ip"]))
        switch.process_packet({"src_ip": 7})
        assert seen == [7]


class TestStaticSketchFootprints:
    def test_rows_drive_hash_and_salu(self):
        spec = StaticSketchSpec("x", rows=3, buckets_per_row=1024, bucket_bits=32)
        vec = spec.footprint()
        assert vec.hash_units == 3 and vec.salus == 3

    def test_sram_rounds_up_to_row_blocks(self):
        # Tiny rows still consume one SRAM block each.
        spec = StaticSketchSpec("x", rows=3, buckets_per_row=16, bucket_bits=1)
        assert spec.footprint().sram_blocks == pytest.approx(3.0)

    def test_figure2_reports_all_sketches_plus_sum(self):
        table = static_sketch_utilization()
        assert set(table) == {"BloomFilter", "CMS", "HLL", "MRAC", "Sum"}
        for row in table.values():
            assert set(row) == {
                "hash_unit",
                "logical_table_id",
                "stateful_alu",
                "stateful_memory",
            }

    def test_sum_is_elementwise_total(self):
        table = static_sketch_utilization()
        for resource in table["Sum"]:
            individual = sum(
                table[name][resource] for name in table if name != "Sum"
            )
            assert table["Sum"][resource] == pytest.approx(individual)

    def test_coexistence_pressure(self):
        """Figure 2's point: the four sketches together already occupy a
        noticeable share of at least one resource."""
        table = static_sketch_utilization()
        assert max(table["Sum"].values()) > 0.1

    def test_max_static_keys_is_about_four(self):
        """§2.2 / CocoSketch: no more than ~4 single-key sketches fit in a
        typical scenario alongside switch.p4."""
        from repro.dataplane.switch import max_static_keys

        assert 2 <= max_static_keys() <= 5

    def test_smaller_sketches_fit_more(self):
        from repro.dataplane.switch import FIGURE2_SKETCHES, max_static_keys

        tiny = FIGURE2_SKETCHES[0]  # 3-row Bloom filter, 1-bit buckets
        assert max_static_keys(tiny) > max_static_keys()
