"""Tracer sampling and span tests, plus singleton behavior."""

import pytest

from repro import telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer


class TestSampling:
    def test_one_in_n(self):
        tracer = Tracer(MetricsRegistry(), sample_interval=4)
        decisions = [tracer.should_sample() for _ in range(12)]
        assert decisions.count(True) == 3
        assert decisions[3] and decisions[7] and decisions[11]

    def test_interval_one_samples_everything(self):
        tracer = Tracer(MetricsRegistry(), sample_interval=1)
        assert all(tracer.should_sample() for _ in range(5))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Tracer(MetricsRegistry(), sample_interval=0)


class TestSpans:
    def test_span_records_into_named_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with tracer.span("install", deployment="task1"):
            pass
        histogram = registry.get("install_seconds", deployment="task1")
        assert histogram.count == 1
        assert histogram.sum >= 0

    def test_span_records_even_on_exception(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with pytest.raises(RuntimeError):
            with tracer.span("fail"):
                raise RuntimeError("boom")
        assert registry.get("fail_seconds").count == 1


class TestSingleton:
    def test_disabled_by_default(self):
        assert telemetry.TELEMETRY.enabled is False

    def test_enable_disable_reset(self):
        state = telemetry.enable(sample_interval=16)
        try:
            assert state is telemetry.TELEMETRY
            assert state.enabled
            assert state.tracer.sample_interval == 16
            state.registry.counter("tmp_total").inc()
            state.events.emit(telemetry.EV_TASK_ADD, task_id=1)
            telemetry.reset()
            assert state.registry.value("tmp_total") == 0
            assert len(state.events) == 0
            assert state.enabled  # reset does not flip the flag
        finally:
            telemetry.disable()
            telemetry.reset()
        assert telemetry.TELEMETRY.enabled is False
