"""Unit tests for counters, gauges, histograms, and the registry."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("packets_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("packets_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_and_labels_share_an_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", stage="3")
        b = registry.counter("hits_total", stage="3")
        c = registry.counter("hits_total", stage="4")
        assert a is b and a is not c
        a.inc()
        assert registry.value("hits_total", stage="3") == 1
        assert registry.value("hits_total", stage="4") == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("tasks_active")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_gauges_can_go_negative(self):
        gauge = MetricsRegistry().gauge("drift")
        gauge.dec(5)
        assert gauge.value == -5


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = MetricsRegistry().histogram("lat_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        cumulative = dict(histogram.cumulative())
        assert cumulative[1.0] == 1
        assert cumulative[10.0] == 2
        assert cumulative[100.0] == 3
        assert cumulative[float("inf")] == 4
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(555.5)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(10.0, 1.0))

    def test_default_ms_buckets_are_usable(self):
        histogram = MetricsRegistry().histogram("lat", buckets=DEFAULT_MS_BUCKETS)
        histogram.observe(16.0)
        assert histogram.count == 1


class TestRegistry:
    def test_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total", label="other")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_name", **{"0bad": "v"})

    def test_reset_zeroes_in_place_keeping_handles(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        histogram = registry.histogram("h_seconds")
        counter.inc(7)
        histogram.observe(0.1)
        registry.reset()
        assert counter.value == 0
        assert histogram.count == 0 and histogram.sum == 0
        counter.inc()  # the cached handle still feeds the registry
        assert registry.value("c_total") == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", kind="a").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h_seconds").observe(1e-4)
        snapshot = registry.snapshot()
        assert {e["name"] for e in snapshot["counters"]} == {"c_total"}
        assert snapshot["counters"][0]["labels"] == {"kind": "a"}
        assert snapshot["gauges"][0]["value"] == 0.5
        hist = snapshot["histograms"][0]
        assert hist["count"] == 1
        assert hist["buckets"][-1][0] == "+Inf"
        assert registry.families() == {
            "c_total": "counter",
            "g": "gauge",
            "h_seconds": "histogram",
        }

    def test_metric_classes_exported(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("a"), Counter)
        assert isinstance(registry.gauge("b"), Gauge)
        assert isinstance(registry.histogram("c"), Histogram)
