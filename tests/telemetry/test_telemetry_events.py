"""Unit tests for the control-plane event log."""

import json

import pytest

from repro.telemetry.events import (
    EV_MEM_ALLOC,
    EV_TASK_ADD,
    EV_TASK_REMOVE,
    EventLog,
)


class TestEmit:
    def test_sequence_and_timestamps_are_monotonic(self):
        log = EventLog()
        events = [log.emit(EV_TASK_ADD, task_id=i) for i in range(5)]
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]
        assert all(a.ts_ms <= b.ts_ms for a, b in zip(events, events[1:]))

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            EventLog().emit("task_added")  # not in the taxonomy

    def test_payload_round_trips(self):
        log = EventLog()
        log.emit(EV_TASK_ADD, task_id=3, groups=[0, 1], latency_ms=7.2)
        event = list(log)[0]
        assert event.data["groups"] == [0, 1]
        assert event.to_dict()["task_id"] == 3


class TestQuery:
    def _populated(self):
        log = EventLog()
        log.emit(EV_TASK_ADD, task_id=1)
        log.emit(EV_MEM_ALLOC, owner="cmug0/cmu0", base=0, length=64)
        log.emit(EV_TASK_ADD, task_id=2)
        log.emit(EV_TASK_REMOVE, task_id=1)
        return log

    def test_by_type(self):
        log = self._populated()
        assert [e.data["task_id"] for e in log.of_type(EV_TASK_ADD)] == [1, 2]

    def test_by_payload(self):
        log = self._populated()
        assert {e.type for e in log.query(task_id=1)} == {EV_TASK_ADD, EV_TASK_REMOVE}

    def test_since_seq_and_predicate(self):
        log = self._populated()
        assert len(log.query(since_seq=2)) == 2
        assert len(log.query(predicate=lambda e: "owner" in e.data)) == 1

    def test_type_counts(self):
        assert self._populated().type_counts() == {
            EV_TASK_ADD: 2,
            EV_MEM_ALLOC: 1,
            EV_TASK_REMOVE: 1,
        }


class TestCapacityAndExport:
    def test_bounded_capacity_drops_oldest_keeps_seq(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit(EV_TASK_ADD, task_id=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.seq for e in log] == [3, 4, 5]

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit(EV_TASK_ADD, task_id=1)
        log.emit(EV_TASK_REMOVE, task_id=1)
        path = tmp_path / "events.jsonl"
        assert log.dump_jsonl(str(path)) == 2
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == [EV_TASK_ADD, EV_TASK_REMOVE]
        assert all({"seq", "ts_ms", "task_id"} <= set(r) for r in records)

    def test_empty_log_dumps_empty_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert EventLog().dump_jsonl(str(path)) == 0
        assert path.read_text() == ""

    def test_clear(self):
        log = EventLog()
        log.emit(EV_TASK_ADD, task_id=1)
        log.clear()
        assert len(log) == 0 and log.dropped == 0
