"""Unit tests for the flight recorder (phase spans, aggregation, export)."""

import json
import threading
import time

import pytest

from repro import telemetry
from repro.telemetry.spans import (
    DEFAULT_CAPACITY,
    NULL_SPAN,
    FlightRecorder,
    aggregate_spans,
    format_phase_tree,
    to_chrome_trace,
    write_chrome_trace,
)


@pytest.fixture
def recorder():
    return FlightRecorder().enable()


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert FlightRecorder().enabled is False

    def test_span_returns_shared_null_span(self):
        rec = FlightRecorder()
        sp = rec.span("anything", cat="x", attr=1)
        assert sp is NULL_SPAN
        with sp as inner:
            assert inner.span_id is None
            assert inner.parent_id is None
        assert rec.spans == []

    def test_add_is_a_noop(self):
        rec = FlightRecorder()
        assert rec.add("graft", 5.0) is None
        assert rec.spans == []

    def test_disable_reenable_preserves_ring(self, recorder):
        with recorder.span("kept"):
            pass
        recorder.disable()
        with recorder.span("dropped"):
            pass
        recorder.enable()
        assert [s.name for s in recorder.spans] == ["kept"]


class TestRecording:
    def test_span_records_wall_and_cpu(self, recorder):
        with recorder.span("work", cat="test", packets=7):
            time.sleep(0.002)
        (span,) = recorder.spans
        assert span.name == "work"
        assert span.cat == "test"
        assert span.attrs == {"packets": 7}
        assert span.wall_ms >= 1.0
        assert span.cpu_ms >= 0.0
        assert span.start_us >= 0.0
        assert span.parent_id is None

    def test_nesting_sets_parent_ids(self, recorder):
        with recorder.span("outer") as outer:
            assert recorder.current_id() == outer.span_id
            with recorder.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert recorder.current_id() is None
        by_name = {s.name: s for s in recorder.spans}
        # Inner exits (and is appended) first; both parents are correct.
        assert [s.name for s in recorder.spans] == ["inner", "outer"]
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_exception_still_records_and_pops(self, recorder):
        with pytest.raises(RuntimeError):
            with recorder.span("fails"):
                raise RuntimeError("boom")
        assert recorder.current_id() is None
        assert [s.name for s in recorder.spans] == ["fails"]

    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=4).enable()
        for i in range(10):
            with rec.span(f"s{i}"):
                pass
        assert rec.capacity == 4
        assert [s.name for s in rec.spans] == ["s6", "s7", "s8", "s9"]

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_enable_can_resize(self, recorder):
        recorder.enable(capacity=2)
        for i in range(3):
            with recorder.span(f"s{i}"):
                pass
        assert recorder.capacity == 2
        assert len(recorder.spans) == 2
        with pytest.raises(ValueError):
            recorder.enable(capacity=0)

    def test_clear_resets_ring_and_timebase(self, recorder):
        with recorder.span("old"):
            time.sleep(0.001)
        assert recorder.now_us() > 0.0
        recorder.clear()
        assert recorder.spans == []
        with recorder.span("new"):
            pass
        (span,) = recorder.spans
        # The new span starts near the fresh epoch, not the old one's end.
        assert span.start_us < 50_000

    def test_threads_have_independent_stacks(self, recorder):
        seen = {}

        def worker():
            with recorder.span("thread-span") as sp:
                seen["parent"] = sp.parent_id
                time.sleep(0.001)

        with recorder.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        by_name = {s.name: s for s in recorder.spans}
        assert seen["parent"] is None  # not nested under main's span
        assert by_name["thread-span"].tid != by_name["main-span"].tid


class TestAdd:
    def test_add_defaults_to_current_parent_and_ending_now(self, recorder):
        with recorder.span("outer") as outer:
            span_id = recorder.add("grafted", 5.0, shard=2)
        grafted = next(s for s in recorder.spans if s.name == "grafted")
        assert grafted.span_id == span_id
        assert grafted.parent_id == outer.span_id
        assert grafted.wall_ms == 5.0
        assert grafted.attrs == {"shard": 2}
        # ends "now": start is wall_ms before the clock reading.
        assert grafted.start_us <= recorder.now_us() - 4_900

    def test_add_with_explicit_parent_and_start(self, recorder):
        with recorder.span("dispatch") as sp:
            dispatch_id = sp.span_id
        pc = time.perf_counter()
        start = recorder.rel_us(pc)
        span_id = recorder.add(
            "worker", 3.0, parent_id=dispatch_id, start_us=start
        )
        grafted = next(s for s in recorder.spans if s.span_id == span_id)
        assert grafted.parent_id == dispatch_id
        assert grafted.start_us == pytest.approx(start)

    def test_add_root_span(self, recorder):
        recorder.add("root", 1.0, parent_id=None)
        (span,) = recorder.spans
        assert span.parent_id is None


class TestAggregation:
    def _spanfall(self, recorder):
        """Two 'epochs' of the same phase names, plus an orphan."""
        for _ in range(2):
            with recorder.span("rotate"):
                with recorder.span("snapshot"):
                    pass
                with recorder.span("reset"):
                    pass
        recorder.add("orphan", 2.0, parent_id=12345)  # parent not in ring

    def test_groups_by_name_along_parent_chains(self, recorder):
        self._spanfall(recorder)
        root = aggregate_spans(recorder.spans)
        rotate = root.children["rotate"]
        assert rotate.count == 2
        assert set(rotate.children) == {"snapshot", "reset"}
        assert rotate.children["snapshot"].count == 2
        # Root totals sum the top level; the orphan became a root.
        assert "orphan" in root.children
        assert root.wall_ms == pytest.approx(
            rotate.wall_ms + root.children["orphan"].wall_ms
        )

    def test_self_time_and_coverage(self, recorder):
        with recorder.span("outer"):
            recorder.add("inner", 1.0)
            time.sleep(0.004)
        root = aggregate_spans(recorder.spans)
        outer = root.find("outer")
        assert outer is not None
        assert outer.self_ms == pytest.approx(outer.wall_ms - 1.0)
        assert 0.0 < outer.coverage < 1.0
        assert root.find("inner").wall_ms == pytest.approx(1.0)
        assert root.find("missing") is None

    def test_to_dict_shape(self, recorder):
        self._spanfall(recorder)
        payload = aggregate_spans(recorder.spans).to_dict()
        assert payload["name"] == "total"
        names = {child["name"] for child in payload["children"]}
        assert {"rotate", "orphan"} <= names

    def test_format_phase_tree(self, recorder):
        self._spanfall(recorder)
        text = format_phase_tree(aggregate_spans(recorder.spans), min_pct=0.0)
        assert "rotate" in text
        assert "snapshot" in text
        assert text.splitlines()[-1].startswith("total")
        assert "100.0%" in text

    def test_format_empty_tree(self):
        text = format_phase_tree(aggregate_spans([]))
        assert text.splitlines()[-1].startswith("total")


class TestChromeExport:
    def test_trace_event_shape(self, recorder):
        with recorder.span("outer", cat="svc", epoch=3):
            with recorder.span("inner"):
                pass
        trace = to_chrome_trace(recorder.spans, meta={"workload": "test"})
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"] == {"workload": "test"}
        events = trace["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        assert outer["cat"] == "svc"
        assert inner["cat"] == "flymon"  # empty cat gets the default
        assert outer["args"]["epoch"] == 3
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        # dur is microseconds (wall_ms * 1e3).
        span = next(s for s in recorder.spans if s.name == "outer")
        assert outer["dur"] == pytest.approx(span.wall_ms * 1e3, abs=0.01)

    def test_non_jsonable_attrs_become_strings(self, recorder):
        recorder.add("span", 1.0, obj=object())
        trace = to_chrome_trace(recorder.spans)
        payload = json.dumps(trace)  # must not raise
        assert "span" in payload

    def test_write_chrome_trace_round_trips(self, recorder, tmp_path):
        with recorder.span("phase"):
            pass
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), recorder.spans, meta={"packets": 10})
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"][0]["name"] == "phase"
        assert loaded["otherData"]["packets"] == 10


class TestTelemetryWiring:
    def test_module_recorder_is_telemetrys(self):
        assert telemetry.RECORDER is telemetry.TELEMETRY.recorder

    def test_enable_disable_helpers(self):
        try:
            rec = telemetry.enable_recorder(capacity=16)
            assert rec is telemetry.RECORDER
            assert rec.enabled and rec.capacity == 16
        finally:
            telemetry.RECORDER.enable(capacity=DEFAULT_CAPACITY)
            telemetry.disable_recorder()
        assert telemetry.RECORDER.enabled is False

    def test_reset_clears_recorder(self):
        try:
            telemetry.enable_recorder()
            with telemetry.RECORDER.span("stale"):
                pass
            assert telemetry.RECORDER.spans
            telemetry.reset()
            assert telemetry.RECORDER.spans == []
        finally:
            telemetry.disable_recorder()
            telemetry.reset()
