"""Unit tests for the bench regression ledger (repro.bench_history)."""

import json

import pytest

from repro.bench_history import (
    Finding,
    build_entry,
    classify,
    compare,
    flatten_metrics,
    format_report,
    load_baseline,
    load_history,
    load_results,
    machine_info,
    record_history,
    same_machine,
    write_baseline,
)


class TestClassify:
    @pytest.mark.parametrize(
        "metric, direction, kind",
        [
            ("speedup", "higher", "ratio"),
            ("speedup_vs_batched", "higher", "ratio"),
            ("scalar_pps", "higher", "absolute"),
            ("streaming.workers2.packets_per_second", "higher", "absolute"),
            ("seconds", "lower", "absolute"),
            ("seal_ms", "lower", "absolute"),
            ("rotation_overhead_pct", "lower", "ratio"),
            ("latency_p99", "lower", "absolute"),
        ],
    )
    def test_direction_and_kind(self, metric, direction, kind):
        spec = classify(metric)
        assert spec is not None
        assert (spec.direction, spec.kind) == (direction, kind)

    def test_unknown_metric_is_informational(self):
        assert classify("num_packets") is None
        assert classify("batch_size") is None


class TestFlatten:
    def test_nested_paths_and_meta_skipped(self):
        payload = {
            "name": "svc",
            "machine_info": {"cpu_count": 8},
            "params": {"packets": 100},
            "speedup": {"workers4": 2.5},
            "seconds": 3.0,
            "identical": True,  # bools are not metrics
            "backend": "thread",  # strings are not metrics
        }
        assert flatten_metrics(payload) == {
            "speedup.workers4": 2.5,
            "seconds": 3.0,
        }


class TestMachineInfo:
    def test_fingerprint_shape(self):
        info = machine_info()
        assert set(info) == {"cpu_count", "python", "machine", "system", "git_sha"}

    def test_same_machine_ignores_git_sha(self):
        a = machine_info()
        b = dict(a, git_sha="something-else")
        assert same_machine(a, b)
        assert not same_machine(a, dict(a, cpu_count=(a["cpu_count"] or 0) + 1))
        assert not same_machine(a, None)
        assert not same_machine(None, None)


class TestLedger:
    def _results_dir(self, tmp_path, **metrics):
        payload = {"name": "demo", **metrics}
        (tmp_path / "BENCH_demo.json").write_text(json.dumps(payload))
        return tmp_path

    def test_load_results(self, tmp_path):
        directory = self._results_dir(tmp_path, speedup=2.0)
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        results = load_results(directory)
        assert set(results) == {"demo"}
        assert load_results(tmp_path / "missing") == {}

    def test_record_and_load_history(self, tmp_path):
        directory = self._results_dir(tmp_path, speedup=2.0)
        history = tmp_path / "ledger" / "history.jsonl"
        record_history(directory, history)
        record_history(directory, history)
        entries = load_history(history)
        assert len(entries) == 2
        assert entries[0]["benches"]["demo"] == {"speedup": 2.0}
        assert "machine_info" in entries[0]
        assert load_history(tmp_path / "nope.jsonl") == []

    def test_baseline_round_trip(self, tmp_path):
        directory = self._results_dir(tmp_path, speedup=2.0, seconds=1.5)
        baseline_path = tmp_path / "baseline.json"
        written = write_baseline(directory, baseline_path)
        loaded = load_baseline(baseline_path)
        assert loaded["benches"] == written["benches"]
        assert load_baseline(tmp_path / "missing.json") is None


class TestCompare:
    def _baseline(self, benches, info=None):
        return {
            "machine_info": info if info is not None else machine_info(),
            "benches": benches,
        }

    def test_ok_within_threshold(self):
        baseline = self._baseline({"demo": {"speedup": 2.0}})
        report = compare({"demo": {"speedup": 1.9}}, baseline, threshold=0.25)
        assert report.ok
        (finding,) = report.findings
        assert not finding.regressed and finding.skipped is None

    def test_ratio_regression_flagged(self):
        baseline = self._baseline({"demo": {"speedup": 2.0}})
        report = compare({"demo": {"speedup": 1.0}}, baseline, threshold=0.25)
        assert not report.ok
        (finding,) = report.regressions
        assert finding.metric == "speedup"
        assert finding.delta_pct == pytest.approx(-50.0)

    def test_lower_is_better_direction(self):
        baseline = self._baseline({"demo": {"rotation_overhead_pct": 4.0}})
        worse = compare(
            {"demo": {"rotation_overhead_pct": 6.0}}, baseline, threshold=0.25
        )
        assert not worse.ok
        better = compare(
            {"demo": {"rotation_overhead_pct": 1.0}}, baseline, threshold=0.25
        )
        assert better.ok

    def test_absolute_skipped_across_machines(self):
        other = dict(machine_info(), cpu_count=999)
        baseline = self._baseline(
            {"demo": {"scalar_pps": 1000.0, "speedup": 2.0}}, info=other
        )
        report = compare(
            {"demo": {"scalar_pps": 10.0, "speedup": 1.9}}, baseline
        )
        assert not report.comparable_machine
        by_metric = {f.metric: f for f in report.findings}
        assert by_metric["scalar_pps"].skipped  # not judged, visible
        assert not by_metric["scalar_pps"].regressed
        assert by_metric["speedup"].skipped is None  # ratios always judged
        assert report.ok

    def test_absolute_judged_on_same_machine(self):
        baseline = self._baseline({"demo": {"scalar_pps": 1000.0}})
        report = compare({"demo": {"scalar_pps": 10.0}}, baseline)
        assert report.comparable_machine
        assert not report.ok

    def test_missing_bench_reported(self):
        baseline = self._baseline({"gone": {"speedup": 2.0}})
        report = compare({}, baseline)
        assert report.missing_benches == ["gone"]
        assert report.ok

    def test_informational_metrics_not_judged(self):
        baseline = self._baseline({"demo": {"num_packets": 8000.0}})
        report = compare({"demo": {"num_packets": 4.0}}, baseline)
        assert report.findings == [] and report.ok


class TestFormat:
    def test_report_mentions_regressions_and_skips(self):
        report = compare(
            {"demo": {"speedup": 1.0}},
            {
                "machine_info": dict(machine_info(), cpu_count=999),
                "benches": {"demo": {"speedup": 2.0, "scalar_pps": 10.0}},
            },
        )
        text = format_report(report, verbose=True)
        assert "REGRESSED" in text
        assert "different machine" in text

    def test_finding_describe(self):
        finding = Finding(
            bench="demo",
            metric="speedup",
            baseline=2.0,
            current=1.0,
            direction="higher",
            kind="ratio",
            delta_pct=-50.0,
            regressed=True,
        )
        assert "demo:speedup" in finding.describe()
        assert "REGRESSED" in finding.describe()


class TestBuildEntry:
    def test_entry_flattens_every_bench(self):
        entry = build_entry(
            {"a": {"speedup": 2.0}, "b": {"nested": {"seconds": 1.0}}},
            info={"cpu_count": 1},
        )
        assert entry["machine_info"] == {"cpu_count": 1}
        assert entry["benches"] == {
            "a": {"speedup": 2.0},
            "b": {"nested.seconds": 1.0},
        }
        assert "recorded_at" in entry
