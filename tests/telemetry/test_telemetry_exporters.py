"""Exporter tests: Prometheus text format validity and JSON snapshots."""

import json
import re

from repro import telemetry
from repro.telemetry.events import EV_TASK_ADD, EventLog
from repro.telemetry.export import (
    RESOURCE_GAUGE,
    build_snapshot,
    load_artifact,
    summarize,
    to_prometheus,
    update_resource_gauges,
    write_artifact,
)
from repro.telemetry.metrics import MetricsRegistry

#: One valid exposition sample line: name, optional labels, numeric value.
SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|\+Inf|-Inf|NaN)$"
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("flymon_pipeline_packets_total").inc(100)
    registry.counter("flymon_stage_packets_total", stage="0").inc(100)
    registry.counter("flymon_stage_packets_total", stage="1").inc(100)
    registry.gauge("flymon_tasks_active").set(3)
    histogram = registry.histogram("flymon_span_seconds", buckets=(0.001, 0.1))
    histogram.observe(0.0005)
    histogram.observe(0.05)
    return registry


class TestPrometheus:
    def test_every_line_parses(self):
        text = to_prometheus(_populated_registry())
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* \w+$", line), line
            else:
                assert SAMPLE_RE.match(line), line

    def test_no_duplicate_families_and_contiguous_samples(self):
        text = to_prometheus(_populated_registry())
        lines = text.strip().splitlines()
        families = [l.split()[2] for l in lines if l.startswith("# TYPE")]
        assert len(families) == len(set(families))
        # Samples of a family must all sit under its TYPE line.
        current = None
        seen_done = set()
        for line in lines:
            if line.startswith("# TYPE"):
                if current is not None:
                    seen_done.add(current)
                current = line.split()[2]
                assert current not in seen_done
            else:
                name = line.split("{")[0].split(" ")[0]
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert name.startswith(current) or base == current

    def test_histogram_expansion(self):
        text = to_prometheus(_populated_registry())
        assert '# TYPE flymon_span_seconds histogram' in text
        assert 'flymon_span_seconds_bucket{le="0.001"} 1' in text
        assert 'flymon_span_seconds_bucket{le="+Inf"} 2' in text
        assert "flymon_span_seconds_count 2" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("weird_total", tag='a"b\\c\nd').inc()
        text = to_prometheus(registry)
        assert 'tag="a\\"b\\\\c\\nd"' in text

    def test_renders_from_snapshot_dict(self):
        registry = _populated_registry()
        assert to_prometheus(registry.snapshot()) == to_prometheus(registry)

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestResourceGauges:
    def test_utilization_mapping_becomes_gauges(self):
        registry = MetricsRegistry()
        update_resource_gauges({"hash_units": 0.75, "salus": 0.5}, registry)
        assert registry.value(RESOURCE_GAUGE, scope="pipeline", resource="hash_units") == 0.75
        assert registry.value(RESOURCE_GAUGE, scope="pipeline", resource="salus") == 0.5


class TestArtifacts:
    def test_write_and_load_round_trip(self, tmp_path):
        state = telemetry.Telemetry()
        state.registry.counter("c_total").inc(4)
        state.events = EventLog()
        state.events.emit(EV_TASK_ADD, task_id=9)
        path = tmp_path / "artifact.json"
        written = write_artifact(str(path), state, meta={"experiment": "unit"})
        loaded = load_artifact(str(path))
        assert loaded == json.loads(json.dumps(written))
        assert loaded["meta"]["experiment"] == "unit"
        assert loaded["event_counts"] == {EV_TASK_ADD: 1}
        assert loaded["events"][0]["task_id"] == 9

    def test_summarize_mentions_events_and_metrics(self):
        state = telemetry.Telemetry()
        state.registry.counter("flymon_task_adds_total").inc(2)
        state.events.emit(EV_TASK_ADD, task_id=1)
        text = summarize(build_snapshot(state, meta={"experiment": "x"}))
        assert "task_add" in text
        assert "flymon_task_adds_total" in text
        assert "experiment=x" in text
