"""Unit tests for cross-stacking placement (§3.2, Fig. 8, Fig. 13b/c)."""

import pytest

from repro.core.cmu_group import CmuGroup
from repro.core.placement import (
    apply_placements,
    cmus_deployable,
    max_groups,
    plan_cross_stacking,
    stacking_utilization,
)
from repro.dataplane.pipeline import Pipeline


class TestPlanning:
    def test_nine_groups_in_twelve_stages(self):
        """The paper's headline: 9 CMU Groups (27 CMUs) per pipeline."""
        assert max_groups(12) == 9

    def test_four_stages_fit_one_group(self):
        assert max_groups(4) == 1

    def test_too_few_stages(self):
        assert max_groups(2) == 0

    def test_shift_one_stage_placement(self):
        placements = plan_cross_stacking(12)
        assert len(placements) == 9
        for g, placement in enumerate(placements):
            assert placement.first_stage == g
            assert placement.stage_of("operation") == g + 3

    def test_over_subscription_rejected(self):
        with pytest.raises(ValueError):
            plan_cross_stacking(12, 10)


class TestApplication:
    def test_full_stack_fits_capacity(self):
        """Cross-stacked groups never exceed any stage's resources."""
        pipeline = Pipeline(num_stages=12)
        groups = [CmuGroup(g) for g in range(9)]
        apply_placements(pipeline, groups, plan_cross_stacking(12, 9))
        for stage in pipeline.stages:
            for resource, fraction in stage.utilization().items():
                assert fraction <= 1.0, (stage.index, resource)

    def test_middle_stages_fully_loaded(self):
        """In the steady-state region every MAU stage hosts one stage of four
        different groups, so hash units are 100% used there."""
        pipeline = Pipeline(num_stages=12)
        groups = [CmuGroup(g) for g in range(9)]
        apply_placements(pipeline, groups, plan_cross_stacking(12, 9))
        middle = pipeline.stage(5)
        assert middle.utilization()["hash_units"] == pytest.approx(1.0)
        assert middle.utilization()["salus"] == pytest.approx(0.75)


class TestFigure13b:
    def test_utilization_increases_with_stages(self):
        hash_series = [
            stacking_utilization(n)["hash_units"] for n in (4, 6, 8, 10, 12)
        ]
        assert hash_series == sorted(hash_series)

    def test_twelve_stage_headline_numbers(self):
        """§5.2: at 12 stages hash reaches 75% and SALU 56.25%."""
        util = stacking_utilization(12)
        assert util["hash_units"] == pytest.approx(0.75)
        assert util["salus"] == pytest.approx(0.5625)


class TestFigure13c:
    def test_compression_beats_full_copy_for_large_keys(self):
        phv_free = 1900
        small = cmus_deployable(32, phv_free, with_compression=False)
        large = cmus_deployable(360, phv_free, with_compression=False)
        compressed = cmus_deployable(360, phv_free, with_compression=True)
        assert compressed >= 5 * large  # "5x more CMUs" at 350+ bits
        assert small >= large

    def test_compression_capped_by_stages(self):
        assert cmus_deployable(32, 10**6, with_compression=True) == 27

    def test_full_copy_shrinks_with_key_size(self):
        phv_free = 1900
        series = [
            cmus_deployable(bits, phv_free, with_compression=False)
            for bits in (32, 64, 104, 360)
        ]
        assert series == sorted(series, reverse=True)
