"""Unit tests for parameter selectors and preparation-stage processors."""

import pytest

from repro.analysis.estimators import rho32
from repro.core.compression import KeySelector
from repro.core.params import (
    BitSelectProcessor,
    CompressedKeyParam,
    ComplementProcessor,
    ConstParam,
    FieldParam,
    IdentityProcessor,
    InterarrivalProcessor,
    MinResultsParam,
    OneHotCouponProcessor,
    OverflowIndicatorProcessor,
    ResultParam,
    RhoProcessor,
    param_field,
    result_field,
)


class TestSelectors:
    def test_const(self):
        assert ConstParam(7).value({}, []) == 7

    def test_field(self):
        assert FieldParam("pkt_bytes").value({"pkt_bytes": 123}, []) == 123
        assert FieldParam("missing").value({}, []) == 0

    def test_compressed_key(self):
        sel = CompressedKeyParam(KeySelector((1,), 0, 16))
        assert sel.value({}, [0, 0xDEADBEEF]) == 0xBEEF

    def test_result(self):
        fields = {result_field(2, 1): 42}
        assert ResultParam(2, 1).value(fields, []) == 42

    def test_min_results_skips_non_updated_rows(self):
        fields = {result_field(0, 0): 10, result_field(1, 0): 0}
        sel = MinResultsParam(((0, 0), (1, 0)))
        assert sel.value(fields, []) == 10

    def test_min_results_all_zero(self):
        sel = MinResultsParam(((0, 0),))
        assert sel.value({}, []) == 0


class TestProcessors:
    def test_identity(self):
        assert IdentityProcessor().apply(9, {}) == 9
        assert IdentityProcessor().tcam_entries() == 0

    def test_one_hot_coupon_in_range(self):
        proc = OneHotCouponProcessor(num_coupons=8, prob=1.0 / 16)
        outputs = {proc.apply(v, {}) for v in range(0, 2**32, 2**28)}
        for out in outputs:
            assert out == 0 or bin(out).count("1") == 1

    def test_one_hot_coupon_no_draw_region(self):
        proc = OneHotCouponProcessor(num_coupons=4, prob=1.0 / 64)
        # Hash values far beyond 4/64 of the space draw nothing.
        assert proc.apply(2**31, {}) == 0

    def test_one_hot_coupon_deterministic(self):
        proc = OneHotCouponProcessor(num_coupons=8, prob=1.0 / 16)
        assert proc.apply(12345, {}) == proc.apply(12345, {})

    def test_one_hot_tcam_cost(self):
        assert OneHotCouponProcessor(16, 1 / 32).tcam_entries() == 17

    def test_one_hot_validation(self):
        with pytest.raises(ValueError):
            OneHotCouponProcessor(num_coupons=4, prob=0.5)  # 4 * 0.5 > 1

    def test_bit_select(self):
        proc = BitSelectProcessor(16)
        assert proc.apply(5, {}) == 1 << 5
        assert proc.apply(21, {}) == 1 << 5  # mod 16

    def test_rho_matches_reference(self):
        proc = RhoProcessor(skip_bits=4)
        for v in (0, 1, 0x0FFFFFFF, 0x00000800):
            assert proc.apply(v, {}) == rho32(v, skip_bits=4)

    def test_complement(self):
        proc = ComplementProcessor(width=16)
        assert proc.apply(0x0000, {}) == 0xFFFF
        assert proc.apply(0xFFFF, {}) == 0x0000
        assert proc.tcam_entries() == 0

    def test_overflow_indicator(self):
        proc = OverflowIndicatorProcessor(increment=1)
        assert proc.apply(0, {}) == 1  # upstream saturated
        assert proc.apply(5, {}) == 0  # upstream still counting


class TestInterarrivalProcessor:
    def test_interval_computed_from_previous(self):
        proc = InterarrivalProcessor()
        assert proc.apply(100, {"timestamp": 150}) == 50

    def test_zero_previous_means_new_flow(self):
        assert InterarrivalProcessor().apply(0, {"timestamp": 150}) == 0

    def test_bloom_gate_zeroes_first_packet(self):
        proc = InterarrivalProcessor(bloom_group=0, bloom_cmu=1)
        fields = {
            "timestamp": 150,
            result_field(0, 1): 0b0000,  # pre-update word: bit absent
            param_field(0, 1): 0b0100,
        }
        assert proc.apply(100, fields) == 0

    def test_bloom_gate_passes_known_flow(self):
        proc = InterarrivalProcessor(bloom_group=0, bloom_cmu=1)
        fields = {
            "timestamp": 150,
            result_field(0, 1): 0b0100,  # bit already set
            param_field(0, 1): 0b0100,
        }
        assert proc.apply(100, fields) == 50

    def test_never_negative(self):
        assert InterarrivalProcessor().apply(500, {"timestamp": 100}) == 0
