"""Unit tests for the reduced stateful operation set (Appendix A)."""

import pytest

from repro.core.operations import (
    OP_AND_OR,
    OP_COND_ADD,
    OP_MAX,
    OP_XOR,
    REDUCED_OPERATION_SET,
    load_reduced_operation_set,
)
from repro.dataplane.register import MAX_REGISTER_ACTIONS, Register


@pytest.fixture
def reg():
    register = Register(64, bit_width=16)
    load_reduced_operation_set(register)
    return register


class TestReducedSet:
    def test_three_core_operations_loaded(self):
        register = Register(16)
        load_reduced_operation_set(register, with_xor=False)
        assert set(register.action_names) == set(REDUCED_OPERATION_SET)

    def test_leaves_expansion_room(self):
        """§3.1.2: only three of Tofino's four action slots are required."""
        assert len(REDUCED_OPERATION_SET) == MAX_REGISTER_ACTIONS - 1

    def test_xor_fills_the_reserved_slot(self):
        """§6: the reserved fourth slot hosts XOR for Odd Sketch."""
        register = Register(16)
        load_reduced_operation_set(register, with_xor=True)
        assert len(register.action_names) == MAX_REGISTER_ACTIONS
        assert OP_XOR in register.action_names


class TestXor:
    def test_parity_flip(self, reg):
        reg.execute(OP_XOR, 0, 0b0110, 0)
        assert reg.read(0) == 0b0110
        reg.execute(OP_XOR, 0, 0b0010, 0)
        assert reg.read(0) == 0b0100

    def test_double_insert_cancels(self, reg):
        """The Odd Sketch property: even multiplicities vanish."""
        for _ in range(2):
            reg.execute(OP_XOR, 1, 0b1000, 0)
        assert reg.read(1) == 0

    def test_exports_pre_update_word(self, reg):
        assert reg.execute(OP_XOR, 0, 0b1, 0) == 0
        assert reg.execute(OP_XOR, 0, 0b10, 0) == 0b1


class TestCondAdd:
    def test_adds_below_bound(self, reg):
        result = reg.execute(OP_COND_ADD, 0, 5, 100)
        assert result == 5 and reg.read(0) == 5

    def test_returns_post_update_value(self, reg):
        reg.execute(OP_COND_ADD, 0, 5, 100)
        assert reg.execute(OP_COND_ADD, 0, 3, 100) == 8

    def test_saturation_returns_zero(self, reg):
        reg.write(0, 100)
        assert reg.execute(OP_COND_ADD, 0, 5, 100) == 0
        assert reg.read(0) == 100

    def test_unconditional_with_max_bound(self, reg):
        """p2 = max turns Cond-ADD into CMS's unconditional ADD."""
        bound = (1 << 16) - 1
        for i in range(10):
            reg.execute(OP_COND_ADD, 1, 7, bound)
        assert reg.read(1) == 70

    def test_tower_style_high_bit_counting(self, reg):
        """Counting in the top 4 bits of a 16-bit bucket (Appendix D)."""
        one = 1 << 12
        sat = ((1 << 4) - 1) << 12
        for _ in range(20):
            reg.execute(OP_COND_ADD, 2, one, sat)
        assert reg.read(2) >> 12 == 15  # saturated at the 4-bit cap


class TestMax:
    def test_stores_maximum(self, reg):
        reg.execute(OP_MAX, 0, 10, 0)
        reg.execute(OP_MAX, 0, 5, 0)
        reg.execute(OP_MAX, 0, 20, 0)
        assert reg.read(0) == 20

    def test_exports_previous_value_on_update(self, reg):
        """The pre-update word is what the inter-arrival task needs (§4)."""
        assert reg.execute(OP_MAX, 0, 10, 0) == 0
        assert reg.execute(OP_MAX, 0, 25, 0) == 10

    def test_exports_zero_when_not_updated(self, reg):
        reg.execute(OP_MAX, 0, 10, 0)
        assert reg.execute(OP_MAX, 0, 3, 0) == 0


class TestAndOr:
    def test_or_side(self, reg):
        reg.execute(OP_AND_OR, 0, 0b0101, 1)
        reg.execute(OP_AND_OR, 0, 0b0010, 1)
        assert reg.read(0) == 0b0111

    def test_and_side(self, reg):
        reg.write(0, 0b1111)
        reg.execute(OP_AND_OR, 0, 0b0110, 0)
        assert reg.read(0) == 0b0110

    def test_exports_pre_update_word(self, reg):
        """New-flow detection reads the word before the OR lands."""
        assert reg.execute(OP_AND_OR, 0, 0b1, 1) == 0
        assert reg.execute(OP_AND_OR, 0, 0b10, 1) == 0b1
