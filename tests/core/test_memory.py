"""Unit tests for the buddy allocator and memory quantization (§3.3, §3.4)."""

import pytest

from repro.core.memory import (
    BuddyAllocator,
    MODE_ACCURATE,
    MODE_EFFICIENT,
    MemRange,
    OutOfMemoryError,
    round_memory,
)


class TestMemRange:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            MemRange(base=3, length=4)

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            MemRange(base=0, length=3)

    def test_contains(self):
        r = MemRange(base=8, length=8)
        assert r.contains(8) and r.contains(15) and not r.contains(16)


class TestRoundMemory:
    def test_power_of_two_unchanged(self):
        assert round_memory(1024, MODE_ACCURATE) == 1024

    def test_accurate_rounds_up(self):
        """Accurate mode never allocates less than requested (§3.4)."""
        assert round_memory(1025, MODE_ACCURATE) == 2048
        assert round_memory(5, MODE_ACCURATE) == 8

    def test_efficient_rounds_to_nearest(self):
        assert round_memory(1100, MODE_EFFICIENT) == 1024
        assert round_memory(1900, MODE_EFFICIENT) == 2048

    def test_invalid(self):
        with pytest.raises(ValueError):
            round_memory(0)
        with pytest.raises(ValueError):
            round_memory(10, "bogus")


class TestBuddyAllocator:
    def test_allocations_are_disjoint(self):
        alloc = BuddyAllocator(1024)
        ranges = [alloc.allocate(128) for _ in range(8)]
        covered = set()
        for r in ranges:
            span = set(range(r.base, r.end))
            assert not span & covered
            covered |= span
        assert covered == set(range(1024))

    def test_exhaustion(self):
        alloc = BuddyAllocator(256)
        alloc.allocate(256)
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(32)

    def test_free_and_coalesce(self):
        alloc = BuddyAllocator(256)
        ranges = [alloc.allocate(32) for _ in range(8)]
        for r in ranges:
            alloc.free(r)
        # Fully coalesced: a max-size block is available again.
        assert alloc.allocate(256).length == 256

    def test_min_block_size_is_register_over_32(self):
        """§5.1: a CMU splits into at most 32 partitions."""
        alloc = BuddyAllocator(1 << 16)
        tiny = alloc.allocate(1)
        assert tiny.length == (1 << 16) // 32

    def test_32_partitions_supported(self):
        alloc = BuddyAllocator(1 << 16, max_partitions=32)
        ranges = [alloc.allocate((1 << 16) // 32) for _ in range(32)]
        assert len(ranges) == 32
        assert alloc.free_buckets == 0

    def test_double_free_rejected(self):
        alloc = BuddyAllocator(64)
        r = alloc.allocate(32)
        alloc.free(r)
        with pytest.raises(ValueError):
            alloc.free(r)

    def test_non_power_of_two_rejected(self):
        alloc = BuddyAllocator(64)
        with pytest.raises(ValueError):
            alloc.allocate(3)

    def test_oversized_rejected(self):
        alloc = BuddyAllocator(64)
        with pytest.raises(ValueError):
            alloc.allocate(128)

    def test_can_allocate_is_accurate(self):
        alloc = BuddyAllocator(128, max_partitions=4)
        assert alloc.can_allocate(64)
        alloc.allocate(64)
        alloc.allocate(64)
        assert not alloc.can_allocate(32)

    def test_largest_free_block_tracks_fragmentation(self):
        alloc = BuddyAllocator(128, max_partitions=4)
        a = alloc.allocate(32)
        assert alloc.largest_free_block() == 64
        alloc.free(a)
        assert alloc.largest_free_block() == 128
