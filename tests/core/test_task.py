"""Unit tests for the task abstraction: attributes, filters, definitions."""

import pytest

from repro.core.task import (
    Attribute,
    AttributeSpec,
    MeasurementTask,
    TaskFilter,
    next_task_id,
)
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP


class TestAttributeSpec:
    def test_factories(self):
        assert AttributeSpec.frequency().kind is Attribute.FREQUENCY
        assert AttributeSpec.frequency("pkt_bytes").param == "pkt_bytes"
        assert AttributeSpec.distinct(KEY_SRC_IP).param is KEY_SRC_IP
        assert AttributeSpec.maximum("queue_length").kind is Attribute.MAX

    def test_describe(self):
        assert AttributeSpec.frequency(1).describe() == "frequency(1)"
        assert "src_ip" in AttributeSpec.distinct(KEY_SRC_IP).describe()


class TestTaskFilter:
    def test_match_all(self):
        assert TaskFilter.match_all().matches({"src_ip": 123})

    def test_prefix_match(self):
        f = TaskFilter.of(src_ip=(0x0A000000, 8))
        assert f.matches({"src_ip": 0x0A123456})
        assert not f.matches({"src_ip": 0x0B000000})

    def test_multi_field(self):
        f = TaskFilter.of(src_ip=(0x0A000000, 8), dst_port=(80, 16))
        assert f.matches({"src_ip": 0x0A000001, "dst_port": 80})
        assert not f.matches({"src_ip": 0x0A000001, "dst_port": 443})

    def test_value_masked_to_prefix(self):
        f = TaskFilter.of(src_ip=(0x0A1234FF, 16))
        assert f.matches({"src_ip": 0x0A12FFFF})

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            TaskFilter.of(bogus=(1, 8))

    def test_to_ternary_round_trip(self):
        f = TaskFilter.of(src_ip=(0x0A000000, 8))
        tf = f.to_ternary()["src_ip"]
        assert tf.matches(0x0AFFFFFF) and not tf.matches(0x0B000000)

    def test_describe(self):
        assert TaskFilter.match_all().describe() == "*"
        assert "src_ip" in TaskFilter.of(src_ip=(0x0A000000, 8)).describe()


class TestFilterIntersection:
    def test_disjoint_prefixes_do_not_intersect(self):
        a = TaskFilter.of(src_ip=(0x0A000000, 8))
        b = TaskFilter.of(src_ip=(0x14000000, 8))
        assert not a.intersects(b)

    def test_nested_prefixes_intersect(self):
        """§3.3's example: 10.0.0.0/24 and 10.0.0.0/16 overlap."""
        a = TaskFilter.of(src_ip=(0x0A000000, 24))
        b = TaskFilter.of(src_ip=(0x0A000000, 16))
        assert a.intersects(b) and b.intersects(a)

    def test_match_all_intersects_everything(self):
        assert TaskFilter.match_all().intersects(TaskFilter.of(src_ip=(1, 32)))

    def test_different_fields_intersect(self):
        a = TaskFilter.of(src_ip=(0x0A000000, 8))
        b = TaskFilter.of(dst_ip=(0x14000000, 8))
        assert a.intersects(b)

    def test_half_space_split_disjoint(self):
        """The paper's subtask split: /9 halves of a /8 are disjoint."""
        a = TaskFilter.of(src_ip=(0x0A000000, 9))
        b = TaskFilter.of(src_ip=(0x0A800000, 9))
        assert not a.intersects(b)


class TestMeasurementTask:
    def make(self, **kwargs):
        defaults = dict(
            key=KEY_DST_IP,
            attribute=AttributeSpec.frequency(),
            memory=1024,
        )
        defaults.update(kwargs)
        return MeasurementTask(**defaults)

    def test_defaults(self):
        task = self.make()
        assert task.depth == 3 and task.sample_prob == 1.0
        assert task.filter.matches({})

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(memory=0)
        with pytest.raises(ValueError):
            self.make(depth=0)
        with pytest.raises(ValueError):
            self.make(sample_prob=0.0)
        with pytest.raises(ValueError):
            self.make(sample_prob=1.5)

    def test_describe_mentions_key_and_attribute(self):
        text = self.make().describe()
        assert "dst_ip" in text and "frequency" in text

    def test_task_ids_monotonic(self):
        assert next_task_id() < next_task_id()
