"""Unit tests for the built-in algorithms' planning logic and registry."""

import pytest

from repro.core.algorithms import ALGORITHM_REGISTRY, default_algorithm_for
from repro.core.algorithms.base import fields_from_flow
from repro.core.algorithms.frequency import TOWER_LAYOUT
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP, FlowKeyDef


class TestRegistry:
    def test_all_builtins_registered(self):
        expected = {
            "cms",
            "sumax_sum",
            "mrac",
            "tower",
            "counter_braids",
            "hll",
            "beaucoup",
            "linear_counting",
            "bloom",
            "sumax_max",
            "max_interarrival",
        }
        assert expected <= set(ALGORITHM_REGISTRY)

    def test_defaults_per_attribute(self):
        freq = MeasurementTask(key=KEY_SRC_IP, attribute=AttributeSpec.frequency(), memory=64)
        assert default_algorithm_for(freq) == "cms"
        dist = MeasurementTask(
            key=KEY_DST_IP, attribute=AttributeSpec.distinct(KEY_SRC_IP), memory=64
        )
        assert default_algorithm_for(dist) == "beaucoup"

    def test_explicit_algorithm_wins(self):
        task = MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=64,
            algorithm="tower",
        )
        assert default_algorithm_for(task) == "tower"

    def test_unknown_explicit_algorithm_rejected(self):
        task = MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=64,
            algorithm="nope",
        )
        with pytest.raises(KeyError):
            default_algorithm_for(task)


class TestShapes:
    def make(self, name, **kwargs):
        defaults = dict(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=1024,
            depth=3,
            algorithm=name,
        )
        defaults.update(kwargs)
        task = MeasurementTask(**defaults)
        return ALGORITHM_REGISTRY[name](task)

    def test_cms_shape(self):
        algo = self.make("cms")
        assert algo.num_rows() == 3 and algo.groups_needed() == 1
        assert algo.rows_layout() == [3]

    def test_sumax_sum_chains_groups(self):
        algo = self.make("sumax_sum")
        assert algo.groups_needed() == 3
        assert algo.rows_layout() == [1, 1, 1]

    def test_mrac_single_row(self):
        assert self.make("mrac").num_rows() == 1

    def test_tower_row_memory_multipliers(self):
        algo = self.make("tower")
        assert algo.row_memory(1024) == [1024 * m for _, m in TOWER_LAYOUT]

    def test_counter_braids_layers(self):
        algo = self.make("counter_braids")
        assert algo.rows_layout() == [1, 1]
        assert algo.row_memory(1024) == [1024, 256]

    def test_interarrival_chains(self):
        algo = self.make(
            "max_interarrival",
            attribute=AttributeSpec.maximum("packet_interval"),
            depth=2,
        )
        assert algo.num_rows() == 6
        assert algo.rows_layout() == [2, 2, 2]

    def test_beaucoup_requires_threshold(self):
        with pytest.raises(ValueError):
            self.make(
                "beaucoup",
                attribute=AttributeSpec.distinct(KEY_SRC_IP),
                key=KEY_DST_IP,
            )

    def test_beaucoup_needs_param_key(self):
        algo = self.make(
            "beaucoup",
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            key=KEY_DST_IP,
            threshold=100,
        )
        assert algo.needs_param_key()


class TestFieldsFromFlow:
    def test_full_field_round_trip(self):
        fields = fields_from_flow(KEY_SRC_IP, (0x0A000001,))
        assert fields == {"src_ip": 0x0A000001}

    def test_prefix_flows_land_in_high_bits(self):
        key = FlowKeyDef.of(("src_ip", 24))
        flow = key.extract({"src_ip": 0x0A0102FF})
        fields = fields_from_flow(key, flow)
        assert fields["src_ip"] == 0x0A010200
        # Extraction of the reconstruction gives back the same flow key.
        assert key.extract(fields) == flow

    def test_multi_field(self):
        key = FlowKeyDef.of("src_ip", "dst_port")
        fields = fields_from_flow(key, (5, 80))
        assert fields == {"src_ip": 5, "dst_port": 80}
