"""CLI telemetry: `repro run --telemetry` artifacts and `repro stats`."""

import json
import re

import pytest

from repro import telemetry
from repro.cli import build_parser, main

SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|\+Inf|-Inf|NaN)$"
)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """One instrumented table3 run shared by every test in this module."""
    path = tmp_path_factory.mktemp("telemetry") / "table3.json"
    assert main(["run", "table3", "--telemetry", str(path)]) == 0
    with open(path) as fh:
        return str(path), json.load(fh)


class TestParser:
    def test_run_telemetry_flag(self):
        args = build_parser().parse_args(["run", "table3", "--telemetry", "/tmp/t.json"])
        assert args.telemetry == "/tmp/t.json"
        assert build_parser().parse_args(["run", "table3"]).telemetry is None

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.experiment == "table3"
        assert args.format == "summary"
        assert args.input is None

    def test_stats_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--format", "xml"])


class TestRunWithTelemetry:
    def test_artifact_has_rich_event_log(self, artifact):
        _, snapshot = artifact
        counts = snapshot["event_counts"]
        assert len(counts) >= 5, f"expected >=5 event types, got {sorted(counts)}"
        for ev_type in counts:
            assert ev_type in telemetry.EVENT_TYPES
        assert counts["task_add"] > 0 and counts["rules_install"] > 0
        assert snapshot["events_dropped"] == 0
        assert snapshot["meta"]["experiment"] == "table3"
        assert snapshot["meta"]["datapath_probe"] is True

    def test_artifact_has_nonzero_datapath_counters(self, artifact):
        _, snapshot = artifact
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in snapshot["metrics"]["counters"]
        }
        assert counters[("flymon_pipeline_packets_total", ())] > 0
        stage_hits = [
            v for (name, _), v in counters.items()
            if name == "flymon_stage_packets_total"
        ]
        assert len(stage_hits) == 12 and all(v > 0 for v in stage_hits)
        register_hits = [
            v for (name, _), v in counters.items()
            if name == "flymon_register_accesses_total"
        ]
        assert register_hits and all(v > 0 for v in register_hits)

    def test_leaves_global_telemetry_disabled(self, artifact):
        assert telemetry.TELEMETRY.enabled is False


class TestStats:
    def test_summary_from_artifact(self, artifact, capsys):
        path, _ = artifact
        assert main(["stats", "--input", path]) == 0
        out = capsys.readouterr().out
        assert "task_add" in out
        assert "flymon_pipeline_packets_total" in out

    def test_prometheus_from_artifact_parses(self, artifact, capsys):
        path, _ = artifact
        assert main(["stats", "--input", path, "--format", "prometheus"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        families = []
        for line in lines:
            if line.startswith("# TYPE"):
                families.append(line.split()[2])
            else:
                assert SAMPLE_RE.match(line), line
        assert len(families) == len(set(families))
        assert "flymon_resource_utilization" in families

    def test_json_from_artifact_round_trips(self, artifact, capsys):
        path, snapshot = artifact
        assert main(["stats", "--input", path, "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == snapshot
