"""Unit tests for the adaptive memory manager."""

import pytest

from repro.core.adaptive import AdaptiveMemoryManager, fill_factor
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import KEY_SRC_IP, zipf_trace


def make_manager(memory=256, register_size=1 << 12, **kwargs):
    controller = FlyMonController(num_groups=1, register_size=register_size)
    handle = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=memory,
            depth=3,
            algorithm="cms",
        )
    )
    manager = AdaptiveMemoryManager(
        controller=controller,
        handle=handle,
        min_memory=register_size // 32,
        max_memory=register_size,
        **kwargs,
    )
    return controller, manager


class TestFillFactor:
    def test_empty_task(self):
        _, manager = make_manager()
        assert fill_factor(manager.handle) == 0.0

    def test_grows_with_flows(self):
        controller, manager = make_manager(memory=1024)
        sparse = zipf_trace(num_flows=50, num_packets=200, seed=60)
        controller.process_trace(sparse)
        low = fill_factor(manager.handle)
        dense = zipf_trace(num_flows=2000, num_packets=4000, seed=61)
        controller.process_trace(dense)
        assert fill_factor(manager.handle) > low > 0.0


class TestAdaptiveLoop:
    def test_grows_under_load(self):
        controller, manager = make_manager(memory=128)
        heavy = zipf_trace(num_flows=3000, num_packets=6000, seed=62)
        before = manager.memory
        controller.process_trace(heavy)
        decision = manager.end_of_epoch()
        assert decision.action == "grow"
        assert manager.memory == 2 * before

    def test_shrinks_when_idle(self):
        controller, manager = make_manager(memory=2048)
        light = zipf_trace(num_flows=20, num_packets=100, seed=63)
        controller.process_trace(light)
        decision = manager.end_of_epoch()
        assert decision.action == "shrink"
        assert manager.memory == 1024

    def test_holds_in_band(self):
        controller, manager = make_manager(memory=1024)
        # ~35% fill: inside [shrink_below, grow_above].
        moderate = zipf_trace(num_flows=450, num_packets=900, seed=64)
        controller.process_trace(moderate)
        decision = manager.end_of_epoch()
        assert decision.action == "hold"

    def test_respects_bounds(self):
        controller, manager = make_manager(memory=128)
        manager.max_memory = 256
        heavy = zipf_trace(num_flows=3000, num_packets=6000, seed=65)
        for _ in range(4):
            controller.process_trace(heavy)
            manager.end_of_epoch()
        assert manager.memory <= 256

    def test_converges_through_a_spike(self):
        """The control loop tracks a spike up and back down."""
        controller, manager = make_manager(memory=128)
        def epoch_load(flows):
            controller.process_trace(
                zipf_trace(num_flows=flows, num_packets=2 * flows, seed=flows)
            )
            return manager.end_of_epoch()

        for _ in range(4):
            epoch_load(3000)  # surge
        peak = manager.memory
        assert peak >= 1024
        for _ in range(6):
            epoch_load(15)  # calm
        assert manager.memory < peak

    def test_history_recorded(self):
        controller, manager = make_manager()
        controller.process_trace(zipf_trace(num_flows=50, num_packets=100, seed=66))
        manager.end_of_epoch()
        manager.end_of_epoch()
        assert [d.epoch for d in manager.history] == [0, 1]
