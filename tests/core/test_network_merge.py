"""NetworkCoordinator merge semantics, pinned exactly.

The fleet shares one ``seed_base``, so per-switch registers are mergeable
bit-for-bit: HLL merges by element-wise max (union, no double counting),
existence merges by union, and frequency sums across the edge-partitioned
observation model.
"""

import numpy as np

from repro.core.network import NetworkCoordinator, _hll_ranks
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import KEY_SRC_IP, Trace, zipf_trace
from repro.traffic.packet import PACKET_FIELDS


def hll_task(memory=1024):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.distinct(KEY_SRC_IP),
        memory=memory,
        depth=1,
        algorithm="hll",
    )


def bloom_task(memory=4096):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.existence(),
        memory=memory,
        depth=3,
        algorithm="bloom",
    )


def cms_task(memory=4096):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=3,
        algorithm="cms",
    )


def split_by_parity(trace):
    """Partition packets by src_ip parity: each packet lands on exactly
    one 'edge switch', the observation model query_sum assumes."""
    parity = trace.columns["src_ip"] % 2
    halves = []
    for want in (0, 1):
        mask = parity == want
        halves.append(
            Trace({f: trace.columns[f][mask] for f in PACKET_FIELDS})
        )
    return halves


class TestHllMerge:
    def test_elementwise_max_equals_union_exactly(self):
        """Merging two partitions is bit-identical to one switch that saw
        the whole trace -- same seed_base, same buckets, same ranks."""
        trace = zipf_trace(num_flows=1500, num_packets=6000, seed=81)
        left, right = split_by_parity(trace)

        pair = NetworkCoordinator(["a", "b"])
        pair_handle = pair.deploy_everywhere(hll_task())
        pair.process({"a": left, "b": right})

        solo = NetworkCoordinator(["solo"])
        solo_handle = solo.deploy_everywhere(hll_task())
        solo.process({"solo": trace})

        merged_ranks = np.maximum(
            _hll_ranks(pair_handle.per_switch["a"].algorithm),
            _hll_ranks(pair_handle.per_switch["b"].algorithm),
        )
        solo_ranks = _hll_ranks(solo_handle.per_switch["solo"].algorithm)
        assert merged_ranks.tolist() == solo_ranks.tolist()
        assert (
            pair_handle.merged_cardinality()
            == solo_handle.merged_cardinality()
        )

    def test_overlap_counts_once(self):
        """Flows seen by both switches contribute once: the merged estimate
        stays below the double-counting sum of per-switch estimates."""
        shared = zipf_trace(num_flows=1200, num_packets=5000, seed=82)
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(hll_task())
        net.process({"a": shared, "b": shared})

        per_switch = [
            handle.per_switch[name].algorithm.estimate() for name in ("a", "b")
        ]
        merged = handle.merged_cardinality()
        # Identical traffic => identical registers => merge is idempotent.
        assert merged == per_switch[0] == per_switch[1]
        assert merged < sum(per_switch)


class TestExistenceUnion:
    def test_contains_anywhere_is_the_union(self):
        trace = zipf_trace(num_flows=600, num_packets=3000, seed=83)
        left, right = split_by_parity(trace)
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(bloom_task())
        net.process({"a": left, "b": right})

        a = handle.per_switch["a"].algorithm
        b = handle.per_switch["b"].algorithm
        for flow in list(trace.flow_sizes(KEY_SRC_IP))[:50]:
            assert handle.contains_anywhere(flow) == (
                a.contains(flow) or b.contains(flow)
            )
            assert handle.contains_anywhere(flow)  # it was in the union

    def test_flow_seen_on_one_switch_only(self):
        left = zipf_trace(num_flows=200, num_packets=1000, seed=84)
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(bloom_task())
        net.process({"a": left, "b": Trace.empty()})
        flow = next(iter(left.flow_sizes(KEY_SRC_IP)))
        assert not handle.per_switch["b"].algorithm.contains(flow)
        assert handle.contains_anywhere(flow)


class TestFrequencySum:
    def test_query_sum_is_the_sum_of_switch_estimates(self):
        trace = zipf_trace(num_flows=400, num_packets=4000, seed=85)
        left, right = split_by_parity(trace)
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(cms_task())
        net.process({"a": left, "b": right})

        truth = trace.flow_sizes(KEY_SRC_IP)
        for flow, count in list(truth.items())[:50]:
            parts = [
                handle.per_switch[name].algorithm.query(flow)
                for name in ("a", "b")
            ]
            assert handle.query_sum(flow) == sum(parts)
            # CMS never under-counts, so neither does the summed view.
            assert handle.query_sum(flow) >= count

    def test_network_wide_heavy_hitters_cover_the_truth(self):
        trace = zipf_trace(num_flows=400, num_packets=4000, seed=86)
        left, right = split_by_parity(trace)
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(cms_task())
        net.process({"a": left, "b": right})

        truth = trace.flow_sizes(KEY_SRC_IP)
        threshold = 80
        true_heavy = {f for f, c in truth.items() if c >= threshold}
        assert true_heavy  # the zipf head crosses the threshold
        found = handle.heavy_hitters(truth.keys(), threshold)
        assert true_heavy <= found


def mrac_task(memory=8192):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=1,
        algorithm="mrac",
    )


def hh_cms_task(threshold, memory=4096):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=3,
        algorithm="cms",
        threshold=threshold,
    )


def solo_reference(task, trace):
    """A single switch observing the union traffic (the exactness oracle)."""
    solo = NetworkCoordinator(["solo"])
    handle = solo.deploy_everywhere(task)
    solo.process({"solo": trace})
    return handle.per_switch["solo"]


class TestEntropyMerge:
    """MRAC merges exactly: sum the rows *then* run EM once."""

    def test_merged_entropy_equals_single_switch_union(self):
        trace = zipf_trace(num_flows=500, num_packets=6000, seed=87)
        left, right = split_by_parity(trace)
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(mrac_task())
        net.process({"a": left, "b": right})
        solo = solo_reference(mrac_task(), trace)

        assert handle.merged_distribution() == solo.algorithm.estimate_distribution()
        assert handle.merged_entropy() == solo.algorithm.estimate_entropy()

    def test_merged_entropy_differs_from_averaging(self):
        # The exact law (sum rows, then EM) is not the naive per-switch
        # average: skewed halves pull the naive estimate away.
        trace = zipf_trace(num_flows=500, num_packets=6000, seed=88)
        cut = len(trace) // 4  # deliberately unbalanced split
        from repro.service.engine import _split_trace

        left, right = _split_trace(trace, cut)
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(mrac_task())
        net.process({"a": left, "b": right})
        solo = solo_reference(mrac_task(), trace)

        naive = np.mean(
            [h.algorithm.estimate_entropy() for h in handle.per_switch.values()]
        )
        assert handle.merged_entropy() == solo.algorithm.estimate_entropy()
        assert handle.merged_entropy() != naive

    def test_empty_coordinator_distribution(self):
        net = NetworkCoordinator(["a"])
        handle = net.deploy_everywhere(mrac_task())
        assert handle.merged_distribution() == {}
        assert handle.merged_entropy() == 0.0

    def test_modular_sum_respects_register_width(self):
        # Row dtype wraps exactly like the value_mask the merge applies;
        # summing by hand with int64 then masking must agree.
        trace = zipf_trace(num_flows=300, num_packets=3000, seed=89)
        left, right = split_by_parity(trace)
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(mrac_task())
        net.process({"a": left, "b": right})
        rows = [
            np.asarray(h.algorithm.rows[0].read(), dtype=np.int64)
            for h in handle.per_switch.values()
        ]
        mask = next(
            iter(handle.per_switch.values())
        ).algorithm.rows[0].cmu.register.value_mask
        expected = (rows[0] + rows[1]) & mask
        solo = solo_reference(mrac_task(), trace)
        assert np.array_equal(
            expected, np.asarray(solo.algorithm.rows[0].read(), dtype=np.int64)
        )


class TestDigestHeavyHitterMerge:
    """Alarm-digest union: exact under edge partitioning, sandwiched else."""

    def test_union_exact_under_edge_partitioning(self):
        # Each flow's packets all ingress one switch (parity split), so
        # every per-flow counter reaches the same value it would on a
        # single switch: the digest union is the solo digest set.
        trace = zipf_trace(num_flows=400, num_packets=5000, seed=90)
        left, right = split_by_parity(trace)
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(hh_cms_task(threshold=60))
        net.process({"a": left, "b": right})
        solo = solo_reference(hh_cms_task(threshold=60), trace)

        union = handle.digest_heavy_hitters()
        assert union == solo.algorithm.data_plane_heavy_hitters()
        assert union  # the zipf head fires the alarm

    def test_split_traffic_sandwich_bound(self):
        # Round-robin split: each flow's count halves per switch, so the
        # union can only miss flows (counts below the local threshold); it
        # never reports a flow the solo switch would not.
        trace = zipf_trace(num_flows=400, num_packets=5000, seed=91)
        idx = np.arange(len(trace)) % 2
        halves = [
            Trace({f: trace.columns[f][idx == want] for f in PACKET_FIELDS})
            for want in (0, 1)
        ]
        net = NetworkCoordinator(["a", "b"])
        handle = net.deploy_everywhere(hh_cms_task(threshold=60))
        net.process({"a": halves[0], "b": halves[1]})
        solo = solo_reference(hh_cms_task(threshold=60), trace)

        union = handle.digest_heavy_hitters()
        solo_digests = solo.algorithm.data_plane_heavy_hitters()
        assert union <= solo_digests  # upper slice of the sandwich
