"""Unit tests for the combined-report CLI command."""

import pytest

from repro.cli import FAST_EXPERIMENTS, main


class TestReport:
    def test_fast_report_written(self, tmp_path, capsys):
        output = tmp_path / "REPORT.md"
        assert main(["report", "--fast-only", "--output", str(output)]) == 0
        text = output.read_text()
        assert text.startswith("# FlyMon reproduction report")
        for name in FAST_EXPERIMENTS:
            assert f"## {name}" in text

    def test_report_contains_tables(self, tmp_path):
        output = tmp_path / "r.md"
        main(["report", "--fast-only", "--output", str(output)])
        text = output.read_text()
        assert "Figure 2" in text and "Table 3" in text
