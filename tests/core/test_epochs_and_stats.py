"""Unit tests for the epoch runner and controller stats."""

import pytest

from repro.core.controller import FlyMonController
from repro.core.epochs import EpochRunner
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import KEY_SRC_IP, zipf_trace


def freq_task(memory=2048):
    return MeasurementTask(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=3,
        algorithm="cms",
    )


class TestEpochRunner:
    def test_collects_per_epoch(self):
        controller = FlyMonController(num_groups=1)
        runner = EpochRunner(controller)
        handle = runner.track(controller.add_task(freq_task()))
        runner.collect(
            "total",
            lambda epoch, window: int(sum(row.read().sum() for row in handle.rows)),
        )
        trace = zipf_trace(num_flows=300, num_packets=3000, seed=1)
        results = runner.run(trace, num_epochs=3)
        assert len(results) == 3
        assert sum(r.packets for r in results) == len(trace)
        for r in results:
            # Each epoch's counted packets match that window (d=3 rows).
            assert r.outputs["total"] == 3 * r.packets

    def test_resets_between_epochs(self):
        controller = FlyMonController(num_groups=1)
        runner = EpochRunner(controller)
        handle = runner.track(controller.add_task(freq_task()))
        trace = zipf_trace(num_flows=300, num_packets=3000, seed=2)
        runner.run(trace, num_epochs=2)
        assert all(row.read().sum() == 0 for row in handle.rows)

    def test_epoch_start_hook(self):
        controller = FlyMonController(num_groups=1)
        runner = EpochRunner(controller)
        seen = []
        trace = zipf_trace(num_flows=50, num_packets=500, seed=3)
        runner.run(trace, num_epochs=4, on_epoch_start=seen.append)
        assert seen == [0, 1, 2, 3]

    def test_duplicate_collector_rejected(self):
        runner = EpochRunner(FlyMonController(num_groups=1))
        runner.collect("x", lambda e, w: None)
        with pytest.raises(ValueError):
            runner.collect("x", lambda e, w: None)

    def test_untracked_deployments_reset_by_default(self):
        """Regression: with no track() call every deployment must reset at
        each boundary -- track() narrows the reset set, it is not required
        for epoch semantics to hold."""
        controller = FlyMonController(num_groups=2)
        first = controller.add_task(freq_task())
        second = controller.add_task(freq_task(memory=1024))
        runner = EpochRunner(controller)  # note: nothing tracked
        trace = zipf_trace(num_flows=200, num_packets=2000, seed=4)
        results = runner.run(trace, num_epochs=2)
        assert sum(r.packets for r in results) == len(trace)
        for handle in (first, second):
            assert all(row.read().sum() == 0 for row in handle.rows)

    def test_track_narrows_the_reset_set(self):
        controller = FlyMonController(num_groups=2)
        tracked = controller.add_task(freq_task())
        untracked = controller.add_task(freq_task(memory=1024))
        runner = EpochRunner(controller)
        runner.track(tracked)
        trace = zipf_trace(num_flows=200, num_packets=2000, seed=5)
        runner.run(trace, num_epochs=2)
        assert all(row.read().sum() == 0 for row in tracked.rows)
        # The untracked deployment accumulated across the whole run.
        assert sum(row.read().sum() for row in untracked.rows) > 0

    def test_results_carry_sealed_epochs(self):
        controller = FlyMonController(num_groups=1)
        runner = EpochRunner(controller)
        handle = runner.track(controller.add_task(freq_task()))
        trace = zipf_trace(num_flows=100, num_packets=1000, seed=6)
        results = runner.run(trace, num_epochs=2)
        for r in results:
            rows = [values.tolist() for values in r.sealed.read_rows(handle)]
            assert sum(sum(row) for row in rows) == 3 * r.packets

    @pytest.mark.parametrize("workers", [1, 2])
    def test_fast_paths_match_scalar_runs(self, workers):
        """Regression: epoch runs ride the batched/sharded engines and stay
        bit-identical to the scalar reference path."""
        trace = zipf_trace(num_flows=300, num_packets=3000, seed=7)

        def run(workers, batch_size):
            controller = FlyMonController(num_groups=1)
            runner = EpochRunner(controller)
            handle = runner.track(controller.add_task(freq_task()))
            runner.collect(
                "rows",
                lambda epoch, window: [
                    row.read().tolist() for row in handle.rows
                ],
            )
            return [
                r.outputs["rows"]
                for r in runner.run(
                    trace, num_epochs=4, workers=workers, batch_size=batch_size
                )
            ]

        scalar = run(workers=1, batch_size=0)
        fast = run(workers=workers, batch_size=512)
        assert fast == scalar


class TestControllerStats:
    def test_fresh_controller(self):
        controller = FlyMonController(num_groups=2)
        stats = controller.stats()
        assert stats["tasks"] == 0
        assert stats["groups"] == 2 and stats["cmus"] == 6
        assert stats["memory_utilization"] == 0.0
        assert stats["rules_installed"] == 0

    def test_after_deployment(self):
        controller = FlyMonController(num_groups=1)
        controller.add_task(freq_task(memory=4096))
        stats = controller.stats()
        assert stats["tasks"] == 1
        assert stats["memory_utilization"] > 0.0
        assert stats["rules_installed"] > 0
        assert stats["control_plane_ms"] > 0
        # One hash unit committed to the src_ip key.
        masks = stats["compressed_keys"][0]
        assert "src_ip/32" in [m for m in masks.values() if m]

    def test_memory_returns_after_removal(self):
        controller = FlyMonController(num_groups=1)
        handle = controller.add_task(freq_task())
        controller.remove_task(handle)
        assert controller.stats()["memory_utilization"] == 0.0
