"""Unit tests for both address-translation strategies (§3.3, Fig. 9)."""

import pytest

from repro.core.address_translation import (
    ShiftTranslation,
    TcamTranslation,
    make_translation,
    tcam_usage_fraction,
)
from repro.core.memory import MemRange


class TestShiftTranslation:
    def test_full_register_is_identity(self):
        tr = ShiftTranslation(1024, MemRange(0, 1024))
        assert tr.shift == 0
        assert tr.translate(37) == 37

    def test_half_partition(self):
        tr = ShiftTranslation(1024, MemRange(512, 512))
        assert tr.shift == 1
        assert tr.translate(0) == 512
        assert tr.translate(1023) == 512 + 511

    def test_all_addresses_land_in_range(self):
        mem = MemRange(256, 128)
        tr = ShiftTranslation(1024, mem)
        for addr in range(1024):
            assert mem.contains(tr.translate(addr))

    def test_uniform_spread(self):
        """Every bucket of the partition is reachable and equally loaded."""
        mem = MemRange(0, 64)
        tr = ShiftTranslation(256, mem)
        hits = {}
        for addr in range(256):
            hits[tr.translate(addr)] = hits.get(tr.translate(addr), 0) + 1
        assert set(hits) == set(range(64))
        assert set(hits.values()) == {4}

    def test_two_table_rules(self):
        assert ShiftTranslation(1024, MemRange(0, 256)).table_rules() == 2

    def test_phv_cost_grows_with_partitions(self):
        costs = [ShiftTranslation.phv_bits_for(p) for p in (8, 16, 32, 64)]
        assert costs == sorted(costs)
        assert costs[0] > 0

    def test_phv_cost_validation(self):
        with pytest.raises(ValueError):
            ShiftTranslation.phv_bits_for(3)


class TestTcamTranslation:
    def test_identity_inside_target(self):
        tr = TcamTranslation(1024, MemRange(512, 256))
        assert tr.translate(600) == 600

    def test_maps_other_chunks_into_target(self):
        mem = MemRange(512, 256)
        tr = TcamTranslation(1024, mem)
        for addr in range(1024):
            assert mem.contains(tr.translate(addr))

    def test_entry_count_is_chunks_minus_one(self):
        tr = TcamTranslation(1024, MemRange(0, 256))
        assert tr.tcam_entries() == 3
        assert len(tr.entry_plan()) == 3

    def test_entry_plan_offsets_are_correct(self):
        register = 64
        mem = MemRange(16, 16)
        tr = TcamTranslation(register, mem)
        for lo, hi, offset in tr.entry_plan():
            for addr in range(lo, hi + 1):
                assert (addr + offset) % register == tr.translate(addr)

    def test_preserves_low_bits(self):
        """TCAM translation keeps ``addr mod length`` (Fig. 9's ADD action)."""
        tr = TcamTranslation(1024, MemRange(256, 256))
        assert tr.translate(700) % 256 == 700 % 256


class TestFactory:
    def test_dispatch(self):
        assert isinstance(make_translation("shift", 64, MemRange(0, 32)), ShiftTranslation)
        assert isinstance(make_translation("tcam", 64, MemRange(0, 32)), TcamTranslation)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_translation("bogus", 64, MemRange(0, 32))


class TestFigure11Accounting:
    def test_32_partitions_within_15_percent(self):
        """§3.3: 32 partitions need <15% of one stage's TCAM."""
        assert tcam_usage_fraction(32) < 0.15

    def test_usage_superlinear_in_partitions(self):
        fractions = [tcam_usage_fraction(p) for p in (8, 16, 32, 64)]
        assert fractions == sorted(fractions)
        assert fractions[-1] / fractions[0] > 8
