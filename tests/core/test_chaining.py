"""Correctness tests for cross-group result chaining.

Chained algorithms (SuMax(Sum), Counter Braids, max inter-arrival) depend on
upstream CMUs exporting results into the PHV *before* downstream groups
process the packet.  These tests pin the ordering contract and check the
chained semantics against hand-computed references on tiny inputs.
"""

import pytest

from repro.core.controller import FlyMonController
from repro.core.params import result_field
from repro.core.task import AttributeSpec, MeasurementTask
from repro.traffic import KEY_SRC_IP
from repro.traffic.packet import Packet
from repro.traffic.trace import Trace


def packet_fields(src_ip: int, timestamp: int = 0) -> dict:
    return Packet(src_ip=src_ip, dst_ip=1, src_port=2, dst_port=3,
                  timestamp=timestamp).fields()


class TestResultExportOrdering:
    def test_groups_process_in_ascending_id_order(self):
        controller = FlyMonController(num_groups=3)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=1024,
                depth=3,
                algorithm="sumax_sum",
            )
        )
        assert handle.groups_used == (0, 1, 2)
        fields = packet_fields(0x0A000001)
        controller.process_packet(fields)
        # Every row exported a result for this packet.
        for row in handle.rows:
            assert result_field(row.group.group_id, row.cmu.index) in fields

    def test_sumax_chain_tracks_exact_count_without_collisions(self):
        """One flow, no collisions: every row's counter equals the count."""
        controller = FlyMonController(num_groups=3)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=1024,
                depth=3,
                algorithm="sumax_sum",
            )
        )
        for i in range(7):
            controller.process_packet(packet_fields(0x0A000001, timestamp=i))
        assert handle.algorithm.query((0x0A000001,)) == 7

    def test_sumax_conservative_update_on_forced_collision(self):
        """Two flows sharing row-0's bucket: conservative update keeps the
        *other* rows' counters at the per-flow truth, so the min query stays
        below plain-CMS's inflated answer."""
        controller = FlyMonController(num_groups=3)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=64,  # min partition: plenty of collisions
                depth=3,
                algorithm="sumax_sum",
            )
        )
        flows = [0x0A000000 + i for i in range(300)]
        for ts, src in enumerate(flows * 3):
            controller.process_packet(packet_fields(src, timestamp=ts))
        # Every flow was seen exactly 3 times; conservative update can still
        # overestimate, but never underestimates.
        estimates = [handle.algorithm.query((src,)) for src in flows]
        assert all(est >= 3 for est in estimates)

    def test_counter_braids_overflow_chains_to_next_group(self):
        controller = FlyMonController(num_groups=2)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=1024,
                depth=2,
                algorithm="counter_braids",
            )
        )
        # 40 packets of one flow: layer 1 (4-bit counter) saturates at 15;
        # the remaining 25 increments land in layer 2.
        for i in range(40):
            controller.process_packet(packet_fields(0x0A000001, timestamp=i))
        assert handle.algorithm.query((0x0A000001,)) == 40
        high_row = handle.rows[1]
        assert int(high_row.read().sum()) == 40 - 15

    def test_interarrival_chain_computes_exact_gap_without_collisions(self):
        controller = FlyMonController(num_groups=3)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.maximum("packet_interval"),
                memory=1024,
                depth=1,
                algorithm="max_interarrival",
            )
        )
        for ts in (100, 250, 300, 900, 950):
            controller.process_packet(packet_fields(0x0A000001, timestamp=ts))
        # Gaps: 150, 50, 600, 50 -> max 600.
        assert handle.algorithm.query((0x0A000001,)) == 600

    def test_interarrival_first_packet_records_no_interval(self):
        controller = FlyMonController(num_groups=3)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.maximum("packet_interval"),
                memory=1024,
                depth=1,
                algorithm="max_interarrival",
            )
        )
        controller.process_packet(packet_fields(0x0A000001, timestamp=5000))
        assert handle.algorithm.query((0x0A000001,)) == 0

    def test_interarrival_single_packet_flows_stay_zero(self):
        controller = FlyMonController(num_groups=3)
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.maximum("packet_interval"),
                memory=1024,
                depth=1,
                algorithm="max_interarrival",
            )
        )
        for i, src in enumerate(range(0x0A000001, 0x0A000020)):
            controller.process_packet(packet_fields(src, timestamp=1000 * i))
        for src in range(0x0A000001, 0x0A000020):
            assert handle.algorithm.query((src,)) == 0
