"""Unit tests for the FlyMon control plane."""

import pytest

from repro.core.controller import FlyMonController, PlacementError
from repro.core.memory import MODE_EFFICIENT
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP


def freq_task(memory=4096, **kwargs):
    defaults = dict(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=memory,
        depth=3,
        algorithm="cms",
    )
    defaults.update(kwargs)
    return MeasurementTask(**defaults)


class TestDeployment:
    def test_add_task_returns_queryable_handle(self, controller):
        handle = controller.add_task(freq_task())
        assert handle.algorithm_name == "cms"
        assert len(handle.rows) == 3
        assert handle.deployment_ms > 0

    def test_rules_counted(self, controller):
        handle = controller.add_task(freq_task())
        assert handle.rules_installed > 3  # init + prep + reset per row

    def test_depth_rows_on_distinct_cmus(self, controller):
        handle = controller.add_task(freq_task())
        cmus = {(row.group.group_id, row.cmu.index) for row in handle.rows}
        assert len(cmus) == 3

    def test_remove_task_recycles_resources(self, controller):
        free_before = dict(controller.free_buckets())
        handle = controller.add_task(freq_task())
        controller.remove_task(handle)
        assert controller.free_buckets() == free_before
        assert controller.tasks == []

    def test_remove_twice_rejected(self, controller):
        handle = controller.add_task(freq_task())
        controller.remove_task(handle)
        with pytest.raises(KeyError):
            controller.remove_task(handle)

    def test_unknown_algorithm_rejected(self, controller):
        with pytest.raises(KeyError):
            controller.add_task(freq_task(algorithm="nope"))

    def test_default_algorithm_chosen_by_attribute(self, controller):
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.maximum("queue_length"),
                memory=1024,
            )
        )
        assert handle.algorithm_name == "sumax_max"

    def test_memory_quantized_accurate_mode(self, controller):
        handle = controller.add_task(freq_task(memory=3000))
        assert all(row.mem.length == 4096 for row in handle.rows)

    def test_memory_quantized_efficient_mode(self):
        controller = FlyMonController(num_groups=1, memory_mode=MODE_EFFICIENT)
        handle = controller.add_task(freq_task(memory=4500))
        assert all(row.mem.length == 4096 for row in handle.rows)


class TestPlacementPolicy:
    def test_key_reuse_prefers_same_group(self, controller):
        h1 = controller.add_task(
            freq_task(memory=1024, filter=TaskFilter.of(src_ip=(0x0A000000, 8)))
        )
        h2 = controller.add_task(
            freq_task(
                memory=1024,
                filter=TaskFilter.of(src_ip=(0x14000000, 8)),
            )
        )
        # Same key, disjoint filter: greedy placement lands on the same group
        # to reuse the configured hash mask.
        assert h1.groups_used == h2.groups_used

    def test_conflicting_filters_spread_to_other_groups(self, controller):
        h1 = controller.add_task(freq_task(memory=1024))
        h2 = controller.add_task(freq_task(memory=1024))
        # Both match all traffic: they cannot share CMUs, so the second task
        # must land on a different group.
        assert set(h1.groups_used).isdisjoint(h2.groups_used)

    def test_placement_error_when_full(self):
        controller = FlyMonController(num_groups=1)
        controller.add_task(freq_task(memory=1024))
        with pytest.raises(PlacementError):
            controller.add_task(freq_task(memory=1024))

    def test_chained_algorithm_needs_enough_groups(self):
        controller = FlyMonController(num_groups=2)
        with pytest.raises(PlacementError):
            controller.add_task(freq_task(algorithm="sumax_sum"))

    def test_chained_algorithm_uses_consecutive_groups(self, controller):
        handle = controller.add_task(freq_task(algorithm="sumax_sum", memory=1024))
        assert handle.groups_used == (0, 1, 2)

    def test_memory_exhaustion_is_placement_error(self):
        controller = FlyMonController(num_groups=1, register_size=1 << 12)
        controller.add_task(freq_task(memory=1 << 12))
        with pytest.raises(PlacementError):
            controller.add_task(
                freq_task(
                    memory=1 << 12,
                    filter=TaskFilter.of(src_ip=(0x0A000000, 8)),
                )
            )


class TestResize:
    def test_resize_allocates_new_memory(self, controller, small_trace):
        handle = controller.add_task(freq_task(memory=1024))
        controller.process_trace(small_trace)
        bigger = controller.resize_task(handle, new_memory=4096)
        assert all(row.mem.length == 4096 for row in bigger.rows)
        # The old handle is gone; the new one is registered.
        assert [t.task_id for t in controller.tasks] == [bigger.task_id]

    def test_resize_starts_fresh(self, controller, small_trace):
        handle = controller.add_task(freq_task(memory=1024))
        controller.process_trace(small_trace)
        resized = controller.resize_task(handle, new_memory=2048)
        assert all(row.read().sum() == 0 for row in resized.rows)


class TestMultitasking:
    def test_96_isolated_tasks_on_one_group(self):
        """§5.1: 32 memory partitions x 3 CMUs = 96 concurrent tasks."""
        controller = FlyMonController(num_groups=1, register_size=1 << 15)
        min_part = (1 << 15) // 32
        handles = []
        for i in range(96):
            handles.append(
                controller.add_task(
                    MeasurementTask(
                        key=KEY_SRC_IP,
                        attribute=AttributeSpec.frequency(),
                        memory=min_part,
                        depth=1,
                        algorithm="cms",
                        filter=TaskFilter.of(src_ip=((10 + (i % 32)) << 24, 8)),
                    )
                )
            )
        assert len(controller.tasks) == 96
        groups = {g for h in handles for g in h.groups_used}
        assert groups == {0}
