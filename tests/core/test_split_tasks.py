"""Unit tests for filter splitting and split-task deployment (§3.1.1)."""

import pytest

from repro.analysis.metrics import average_relative_error
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import KEY_SRC_IP, zipf_trace


class TestFilterSplit:
    def test_paper_example(self):
        """10.0.0.0/8 splits into 10.0.0.0/9 and 10.128.0.0/9."""
        parent = TaskFilter.of(src_ip=(0x0A000000, 8))
        low, high = parent.split("src_ip")
        assert dict(low.prefixes)["src_ip"] == (0x0A000000, 9)
        assert dict(high.prefixes)["src_ip"] == (0x0A800000, 9)

    def test_halves_are_disjoint_and_cover_parent(self):
        parent = TaskFilter.of(src_ip=(0x0A000000, 8))
        low, high = parent.split("src_ip")
        assert not low.intersects(high)
        for probe in (0x0A000001, 0x0A7FFFFF, 0x0A800000, 0x0AFFFFFF):
            fields = {"src_ip": probe}
            assert parent.matches(fields)
            assert low.matches(fields) != high.matches(fields)

    def test_split_unconstrained_field(self):
        low, high = TaskFilter.match_all().split("src_ip")
        assert low.matches({"src_ip": 0x00000001})
        assert high.matches({"src_ip": 0x80000001})
        assert not low.intersects(high)

    def test_exact_match_cannot_split(self):
        exact = TaskFilter.of(src_ip=(0x0A000001, 32))
        with pytest.raises(ValueError):
            exact.split("src_ip")

    def test_unknown_field(self):
        with pytest.raises(KeyError):
            TaskFilter.match_all().split("bogus")


class TestSplitTaskDeployment:
    def make_task(self, memory=2048):
        # The parent filter owns 10.0.0.0/8 (where the generator's sources
        # live), so its /9 halves each receive a share of the traffic.
        return MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=memory,
            depth=3,
            algorithm="cms",
            filter=TaskFilter.of(src_ip=(0x0A000000, 8)),
        )

    def test_split_deploys_two_subtasks(self):
        controller = FlyMonController(num_groups=3)
        split = controller.add_split_task(self.make_task())
        assert len(split.subtasks) == 2
        assert len(controller.tasks) == 2

    def test_queries_route_to_owning_subtask(self):
        controller = FlyMonController(num_groups=3)
        split = controller.add_split_task(self.make_task())
        trace = zipf_trace(num_flows=1000, num_packets=10_000, seed=9)
        controller.process_trace(trace)
        truth = trace.flow_sizes(KEY_SRC_IP)
        are = average_relative_error(truth, split.query)
        assert are < 0.3
        # Sanity: each subtask observed a non-trivial share.
        shares = [
            sum(int(row.read().sum()) for row in sub.rows)
            for sub in split.subtasks
        ]
        assert all(s > 0 for s in shares)

    def test_split_reduces_collision_error(self):
        """The point of §3.1.1's subtasks: halved populations per CMU."""
        trace = zipf_trace(num_flows=4000, num_packets=20_000, seed=10)
        truth = trace.flow_sizes(KEY_SRC_IP)

        whole = FlyMonController(num_groups=3)
        whole_handle = whole.add_task(self.make_task(memory=512))
        whole.process_trace(trace)
        are_whole = average_relative_error(truth, whole_handle.algorithm.query)

        split_ctl = FlyMonController(num_groups=3)
        split = split_ctl.add_split_task(self.make_task(memory=512))
        split_ctl.process_trace(trace)
        are_split = average_relative_error(truth, split.query)

        assert are_split < are_whole

    def test_reset(self):
        controller = FlyMonController(num_groups=3)
        split = controller.add_split_task(self.make_task())
        controller.process_trace(zipf_trace(num_flows=100, num_packets=1000, seed=3))
        split.reset()
        assert all(
            row.read().sum() == 0 for sub in split.subtasks for row in sub.rows
        )
