"""Compiled per-task plans: install-time translation caching and the batched
CMU datapath's equivalence with per-packet execution."""

import numpy as np
import pytest

import repro.core.cmu as cmu_mod
from repro import telemetry
from repro.core.cmu import Cmu, CmuTaskConfig
from repro.core.cmu_group import CmuGroup
from repro.core.compression import KeySelector
from repro.core.memory import MemRange
from repro.core.operations import OP_COND_ADD
from repro.core.params import ConstParam, IdentityProcessor, result_field
from repro.core.task import TaskFilter
from repro.dataplane.hashing import HashMask
from repro.traffic.batch import PacketBatch
from repro.traffic.flows import KEY_SRC_IP

RNG = np.random.default_rng(11)


def make_config(task_id=1, mem=None, **kwargs):
    return CmuTaskConfig(
        task_id=task_id,
        filter=kwargs.pop("task_filter", TaskFilter.match_all()),
        key_selector=kwargs.pop("key_selector", KeySelector((0,), 0, 10)),
        p1=kwargs.pop("p1", ConstParam(1)),
        p2=kwargs.pop("p2", ConstParam((1 << 16) - 1)),
        p1_processor=kwargs.pop("p1_processor", IdentityProcessor()),
        mem=mem or MemRange(0, 1 << 10),
        op=kwargs.pop("op", OP_COND_ADD),
        **kwargs,
    )


class TestTranslationCaching:
    def test_install_resolves_translation_once(self, monkeypatch):
        calls = {"n": 0}
        real = cmu_mod.make_translation

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(cmu_mod, "make_translation", counting)
        cmu = Cmu(0, 0, register_size=1 << 10)
        cmu.install_task(make_config())
        assert calls["n"] == 1
        # The scalar datapath and index_for must reuse the cached object
        # instead of rebuilding the translation per packet.
        for src_ip in range(200):
            cmu.process({"src_ip": src_ip}, [src_ip, 0, 0])
            cmu.index_for(1, [src_ip, 0, 0])
        assert calls["n"] == 1

    def test_config_translation_returns_cached_object(self):
        cmu = Cmu(0, 0, register_size=1 << 10)
        cmu.install_task(make_config())
        config = cmu.config(1)
        assert config.cached_translation is not None
        assert config.translation(1 << 10) is config.cached_translation

    def test_cache_ignored_for_foreign_register_size(self):
        cmu = Cmu(0, 0, register_size=1 << 10)
        cmu.install_task(make_config())
        config = cmu.config(1)
        other = config.translation(1 << 12)
        assert other is not config.cached_translation
        assert other.register_size == 1 << 12


class TestPlanLifecycle:
    def test_install_compiles_a_plan(self):
        cmu = Cmu(0, 0, register_size=1 << 10)
        cmu.install_task(make_config(sample_prob=0.5))
        plan = cmu._plans[1]
        assert plan.translation is cmu.config(1).cached_translation
        assert plan.sample_threshold == pytest.approx(0.5 * 2.0**32)
        assert not plan.alarm_armed

    def test_alarm_armed_needs_threshold_and_key(self):
        cmu = Cmu(0, 0, register_size=1 << 10)
        cmu.install_task(
            make_config(alarm_threshold=10, digest_key=KEY_SRC_IP)
        )
        assert cmu._plans[1].alarm_armed

    def test_filter_update_recompiles(self):
        cmu = Cmu(0, 0, register_size=1 << 10)
        cmu.install_task(make_config())
        old_plan = cmu._plans[1]
        new_filter = TaskFilter.of(src_ip=(0x0A000000, 8))
        cmu.update_task_filter(1, new_filter)
        assert cmu._plans[1] is not old_plan
        assert cmu._plans[1].config.filter == new_filter

    def test_remove_drops_the_plan(self):
        cmu = Cmu(0, 0, register_size=1 << 10)
        cmu.install_task(make_config())
        cmu.remove_task(1)
        assert cmu._plans == {}


def _configured_group() -> CmuGroup:
    group = CmuGroup(0, register_size=1 << 10)
    grant = group.keys.acquire({"src_ip": 32})
    for unit, mask in grant.new_masks:
        group.hash_units[unit].set_mask(mask)
    group.cmus[0].install_task(
        make_config(
            key_selector=grant.selector.with_slice(0, 10),
            alarm_threshold=5,
            digest_key=KEY_SRC_IP,
        )
    )
    group.cmus[1].install_task(
        make_config(
            task_id=2,
            key_selector=grant.selector.with_slice(0, 10),
            sample_prob=0.5,
        )
    )
    return group


def _workload(n: int = 3000) -> PacketBatch:
    # Full-range values: hash masks keep the most-significant bits, so
    # low-range synthetic traffic would collapse into one bucket.
    flows = RNG.integers(0, 1 << 32, size=64)
    return PacketBatch(
        {
            "src_ip": RNG.choice(flows, size=n),
            "timestamp": np.arange(n),
        }
    )


class TestGroupBatchEquivalence:
    def test_process_batch_matches_per_packet(self):
        scalar_group = _configured_group()
        batch_group = _configured_group()
        batch = _workload()

        dicts = batch.to_fields_dicts()
        for fields in dicts:
            scalar_group.process(fields)
        batch_group.process_batch(batch)

        for cmu_s, cmu_b in zip(scalar_group.cmus, batch_group.cmus):
            np.testing.assert_array_equal(
                cmu_s.register.read_range(0, cmu_s.register_size),
                cmu_b.register.read_range(0, cmu_b.register_size),
            )
        assert scalar_group.cmus[0].peek_digests(1) == batch_group.cmus[0].peek_digests(1)
        # PHV exports written by the batch must match the scalar dicts.
        name = result_field(0, 0)
        np.testing.assert_array_equal(
            batch.get(name),
            np.array([fields.get(name, 0) for fields in dicts]),
        )


class TestBatchTelemetryCounters:
    def test_counters_advance_by_batch_length(self):
        telemetry.reset()
        telemetry.enable()
        try:
            group = _configured_group()
            batch = _workload(500)
            group.process_batch(batch)
            registry = telemetry.TELEMETRY.registry
            assert registry.value(
                "flymon_group_packets_total", group="0"
            ) == 500
            # Register accesses count matched rows (task 2 samples at 0.5,
            # so its CMU sees fewer than all packets but more than none).
            full = registry.value(
                "flymon_register_accesses_total", group="0", cmu="0"
            )
            sampled = registry.value(
                "flymon_register_accesses_total", group="0", cmu="1"
            )
            assert full == 500
            assert 0 < sampled < 500
        finally:
            telemetry.disable()
