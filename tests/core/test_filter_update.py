"""Unit tests for runtime filter updates (§3.4's task-modification API)."""

import pytest

from repro.core.cmu import TaskConflictError
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import KEY_SRC_IP
from repro.traffic.packet import Packet


def deploy(controller, src_octet=10, memory=2048):
    return controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=memory,
            depth=1,
            algorithm="cms",
            filter=TaskFilter.of(src_ip=(src_octet << 24, 8)),
        )
    )


def send(controller, src_ip, n=1):
    for i in range(n):
        controller.process_packet(
            Packet(src_ip, 1, 2, 3, timestamp=i).fields()
        )


class TestFilterUpdate:
    def test_redirects_traffic_selection(self):
        controller = FlyMonController(num_groups=1)
        handle = deploy(controller, src_octet=10)
        send(controller, 0x0A000001, n=5)   # matched (10/8)
        send(controller, 0x14000001, n=3)   # not matched (20/8)
        assert handle.rows[0].read().sum() == 5

        controller.update_task_filter(
            handle, TaskFilter.of(src_ip=(0x14000000, 8))
        )
        send(controller, 0x0A000001, n=7)   # now ignored
        send(controller, 0x14000001, n=2)   # now counted
        assert handle.rows[0].read().sum() == 5 + 2

    def test_preserves_register_state(self):
        controller = FlyMonController(num_groups=1)
        handle = deploy(controller)
        send(controller, 0x0A000001, n=9)
        before = handle.rows[0].read().copy()
        controller.update_task_filter(
            handle, TaskFilter.of(src_ip=(0x14000000, 8))
        )
        assert (handle.rows[0].read() == before).all()

    def test_handle_reflects_new_filter(self):
        controller = FlyMonController(num_groups=1)
        handle = deploy(controller)
        new_filter = TaskFilter.of(src_ip=(0x14000000, 8))
        controller.update_task_filter(handle, new_filter)
        assert handle.task.filter == new_filter

    def test_update_advances_control_plane_clock(self):
        controller = FlyMonController(num_groups=1)
        handle = deploy(controller)
        before = controller.runtime.now_ms
        controller.update_task_filter(
            handle, TaskFilter.of(src_ip=(0x14000000, 8))
        )
        assert controller.runtime.now_ms > before

    def test_conflicting_update_rejected(self):
        controller = FlyMonController(num_groups=1)
        a = deploy(controller, src_octet=10)
        deploy(controller, src_octet=20)
        # Updating A onto B's prefix would put two tasks on one packet.
        with pytest.raises(TaskConflictError):
            controller.update_task_filter(
                a, TaskFilter.of(src_ip=(0x14000000, 8))
            )

    def test_unknown_task_rejected_at_cmu_level(self):
        controller = FlyMonController(num_groups=1)
        handle = deploy(controller)
        cmu = handle.rows[0].cmu
        with pytest.raises(KeyError):
            cmu.update_task_filter(99999, TaskFilter.match_all())
