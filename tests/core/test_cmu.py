"""Unit tests for the CMU datapath and CMU Groups."""

import pytest

from repro.core.cmu import Cmu, CmuTaskConfig, TaskConflictError
from repro.core.cmu_group import CmuGroup, GROUP_STAGES
from repro.core.compression import KeySelector
from repro.core.memory import MemRange
from repro.core.operations import OP_COND_ADD, OP_MAX
from repro.core.params import ConstParam, FieldParam, IdentityProcessor, result_field
from repro.core.task import TaskFilter
from repro.dataplane.hashing import HashMask


def make_config(task_id=1, mem=None, op=OP_COND_ADD, task_filter=None, **kwargs):
    return CmuTaskConfig(
        task_id=task_id,
        filter=task_filter or TaskFilter.match_all(),
        key_selector=kwargs.pop("key_selector", KeySelector((0,), 0, 16)),
        p1=kwargs.pop("p1", ConstParam(1)),
        p2=kwargs.pop("p2", ConstParam((1 << 16) - 1)),
        p1_processor=kwargs.pop("p1_processor", IdentityProcessor()),
        mem=mem or MemRange(0, 1 << 16),
        op=op,
        **kwargs,
    )


class TestCmuInstall:
    def test_install_and_remove(self):
        cmu = Cmu(0, 0)
        cmu.install_task(make_config())
        assert cmu.task_ids == [1]
        cmu.remove_task(1)
        assert cmu.task_ids == []

    def test_duplicate_task_rejected(self):
        cmu = Cmu(0, 0)
        cmu.install_task(make_config())
        with pytest.raises(ValueError):
            cmu.install_task(make_config())

    def test_conflicting_filters_rejected(self):
        cmu = Cmu(0, 0)
        cmu.install_task(make_config(task_id=1, mem=MemRange(0, 1 << 15)))
        with pytest.raises(TaskConflictError):
            cmu.install_task(make_config(task_id=2, mem=MemRange(1 << 15, 1 << 15)))

    def test_disjoint_filters_coexist(self):
        cmu = Cmu(0, 0)
        f1 = TaskFilter.of(src_ip=(0x0A000000, 8))
        f2 = TaskFilter.of(src_ip=(0x14000000, 8))
        cmu.install_task(make_config(task_id=1, task_filter=f1, mem=MemRange(0, 1 << 15)))
        cmu.install_task(
            make_config(task_id=2, task_filter=f2, mem=MemRange(1 << 15, 1 << 15))
        )
        assert cmu.task_ids == [1, 2]

    def test_sampled_tasks_may_share_traffic(self):
        cmu = Cmu(0, 0)
        cmu.install_task(make_config(task_id=1, mem=MemRange(0, 1 << 15)))
        cmu.install_task(
            make_config(task_id=2, mem=MemRange(1 << 15, 1 << 15), sample_prob=0.5)
        )
        assert len(cmu.task_ids) == 2

    def test_memory_beyond_register_rejected(self):
        cmu = Cmu(0, 0, register_size=1024)
        with pytest.raises(ValueError):
            cmu.install_task(make_config(mem=MemRange(1024, 1024)))

    def test_prep_tcam_accounting(self):
        cmu = Cmu(0, 0)
        cmu.install_task(make_config(mem=MemRange(0, 1 << 14), strategy="tcam"))
        assert cmu.prep_tcam_entries() == 3  # 4 chunks - 1


class TestCmuDatapath:
    def test_counts_matching_packets(self):
        group = CmuGroup(0, register_size=1 << 10)
        grant = group.keys.acquire({"src_ip": 32})
        for unit, mask in grant.new_masks:
            group.hash_units[unit].set_mask(mask)
        cmu = group.cmus[0]
        cmu.install_task(
            make_config(
                key_selector=grant.selector.with_slice(0, 10),
                mem=MemRange(0, 1 << 10),
                p2=ConstParam((1 << 16) - 1),
            )
        )
        fields = {"src_ip": 0x0A000001}
        for _ in range(5):
            group.process(dict(fields))
        compressed = group.compress(fields)
        index = cmu.index_for(1, compressed)
        assert cmu.register.read(index) == 5

    def test_filter_excludes_packets(self):
        group = CmuGroup(0, register_size=1 << 10)
        grant = group.keys.acquire({"src_ip": 32})
        for unit, mask in grant.new_masks:
            group.hash_units[unit].set_mask(mask)
        cmu = group.cmus[0]
        cmu.install_task(
            make_config(
                task_filter=TaskFilter.of(src_ip=(0x0A000000, 8)),
                key_selector=grant.selector.with_slice(0, 10),
                mem=MemRange(0, 1 << 10),
            )
        )
        group.process({"src_ip": 0x14000001})  # 20.0.0.1: outside the filter
        assert cmu.read_task_memory(1).sum() == 0

    def test_result_exported_to_phv(self):
        group = CmuGroup(0, register_size=1 << 10)
        grant = group.keys.acquire({"src_ip": 32})
        for unit, mask in grant.new_masks:
            group.hash_units[unit].set_mask(mask)
        group.cmus[0].install_task(
            make_config(
                key_selector=grant.selector.with_slice(0, 10),
                mem=MemRange(0, 1 << 10),
            )
        )
        fields = {"src_ip": 1}
        group.process(fields)
        assert fields[result_field(0, 0)] == 1  # first Cond-ADD returns 1

    def test_sampling_thins_updates(self):
        group = CmuGroup(0, register_size=1 << 10)
        grant = group.keys.acquire({"src_ip": 32})
        for unit, mask in grant.new_masks:
            group.hash_units[unit].set_mask(mask)
        cmu = group.cmus[0]
        cmu.install_task(
            make_config(
                key_selector=grant.selector.with_slice(0, 10),
                mem=MemRange(0, 1 << 10),
                sample_prob=0.25,
            )
        )
        for ts in range(2000):
            group.process({"src_ip": 7, "timestamp": ts})
        count = cmu.read_task_memory(1).sum()
        assert 300 <= count <= 700  # ~500 expected at p = 0.25

    def test_reset_task_memory(self):
        cmu = Cmu(0, 0, register_size=1024)
        cmu.install_task(make_config(mem=MemRange(0, 1024)))
        cmu.register.write(5, 99)
        cmu.reset_task_memory(1)
        assert cmu.register.read(5) == 0


class TestCmuGroup:
    def test_group_shape(self):
        group = CmuGroup(3)
        assert group.num_cmus == 3
        assert len(group.hash_units) == 3
        assert group.max_selectable_keys() == 6

    def test_stage_demands_cover_all_four_stages(self):
        demands = CmuGroup(0).stage_demands()
        assert set(demands) == set(GROUP_STAGES)

    def test_operation_stage_holds_salus(self):
        demands = CmuGroup(0).stage_demands()
        assert demands["operation"].salus == 3
        assert demands["compression"].salus == 0

    def test_phv_demand_is_compressed_keys_plus_exports(self):
        group = CmuGroup(0)
        assert group.phv_demand_bits() == 32 * 3 + 2 * 16 * 3
