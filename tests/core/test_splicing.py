"""Unit tests for Appendix E's pipeline splicing (mirror + recirculate)."""

import pytest

from repro.core.cmu_group import CmuGroup
from repro.core.placement import (
    apply_spliced_placements,
    plan_spliced_stacking,
    recirculation_overhead,
)
from repro.dataplane.pipeline import Pipeline


class TestSplicedPlanning:
    def test_twelve_groups_in_twelve_stages(self):
        """Appendix E: 9 regular + 3 spliced groups in one pipeline."""
        placements = plan_spliced_stacking(12)
        assert len(placements) == 12
        spliced = [p for p in placements if p.first_stage + 3 >= 12]
        assert len(spliced) == 3

    def test_spliced_groups_wrap(self):
        placements = plan_spliced_stacking(12)
        last = placements[-1]
        assert last.first_stage == 11
        # Its operation stage wraps onto stage (11 + 3) % 12 = 2.
        assert last.stage_of("operation") % 12 == 2


class TestSplicedApplication:
    def test_full_splice_fits_capacity(self):
        """With 12 groups every MAU stage hosts exactly one C/I/P/O, using
        hash units and SALUs at their stage maxima but never beyond."""
        pipeline = Pipeline(num_stages=12)
        groups = [CmuGroup(g) for g in range(12)]
        apply_spliced_placements(pipeline, groups, plan_spliced_stacking(12))
        for stage in pipeline.stages:
            util = stage.utilization()
            assert util["hash_units"] == pytest.approx(1.0)
            assert util["salus"] == pytest.approx(0.75)
            assert all(v <= 1.0 + 1e-9 for v in util.values())

    def test_splice_beats_regular_stacking(self):
        regular = Pipeline(num_stages=12)
        groups = [CmuGroup(g) for g in range(9)]
        from repro.core.placement import apply_placements, plan_cross_stacking

        apply_placements(regular, groups, plan_cross_stacking(12, 9))
        spliced = Pipeline(num_stages=12)
        groups12 = [CmuGroup(g) for g in range(12)]
        apply_spliced_placements(spliced, groups12, plan_spliced_stacking(12))
        assert spliced.utilization()["salus"] > regular.utilization()["salus"]


class TestRecirculationOverhead:
    def test_no_spliced_traffic_is_free(self):
        assert recirculation_overhead(0.0) == 0.0

    def test_proportional_to_mirrored_traffic(self):
        assert recirculation_overhead(0.25) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            recirculation_overhead(1.5)
