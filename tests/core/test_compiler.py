"""Unit tests for the task compiler (rules, undo, dedup)."""

import pytest

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.dataplane.runtime import RULE_KIND_HASH_MASK, RULE_KIND_TABLE
from repro.traffic.flows import KEY_DST_IP, KEY_SRC_IP


def deploy(controller, **kwargs):
    defaults = dict(
        key=KEY_SRC_IP,
        attribute=AttributeSpec.frequency(),
        memory=16_384,
        depth=3,
        algorithm="cms",
    )
    defaults.update(kwargs)
    return controller.add_task(MeasurementTask(**defaults))


class TestRuleCounts:
    def test_first_deployment_includes_hash_mask(self):
        controller = FlyMonController(num_groups=1)
        handle = deploy(controller)
        assert handle.install_report.hash_mask_rules == 1

    def test_key_reuse_avoids_hash_mask(self):
        from repro.core.task import TaskFilter

        controller = FlyMonController(num_groups=1)
        deploy(controller, filter=TaskFilter.of(src_ip=(0x0A000000, 8)))
        second = deploy(controller, filter=TaskFilter.of(src_ip=(0x14000000, 8)))
        assert second.install_report.hash_mask_rules == 0

    def test_preconfigured_keys_avoid_hash_masks(self):
        controller = FlyMonController(
            num_groups=1, preconfigure_keys=(KEY_SRC_IP,)
        )
        handle = deploy(controller)
        assert handle.install_report.hash_mask_rules == 0

    def test_shift_strategy_installs_fewer_rules(self):
        tcam_ctl = FlyMonController(num_groups=1, strategy="tcam")
        shift_ctl = FlyMonController(num_groups=1, strategy="shift")
        tcam_handle = deploy(tcam_ctl, memory=2048)
        shift_handle = deploy(shift_ctl, memory=2048)
        assert shift_handle.rules_installed < tcam_handle.rules_installed

    def test_beaucoup_coupon_entries_shared_within_group(self):
        controller = FlyMonController(num_groups=1)
        d3 = controller.add_task(
            MeasurementTask(
                key=KEY_DST_IP,
                attribute=AttributeSpec.distinct(KEY_SRC_IP),
                memory=16_384,
                depth=3,
                algorithm="beaucoup",
                threshold=512,
            )
        )
        other = FlyMonController(num_groups=1)
        d1 = other.add_task(
            MeasurementTask(
                key=KEY_DST_IP,
                attribute=AttributeSpec.distinct(KEY_SRC_IP),
                memory=16_384,
                depth=1,
                algorithm="beaucoup",
                threshold=512,
            )
        )
        # d=3 shares the coupon table: it costs less than 3x the d=1 rules.
        assert d3.rules_installed < 3 * d1.rules_installed


class TestUndo:
    def test_remove_restores_cmu_state(self):
        controller = FlyMonController(num_groups=1)
        handle = deploy(controller)
        cmus = [row.cmu for row in handle.rows]
        assert all(cmu.task_ids for cmu in cmus)
        controller.remove_task(handle)
        assert all(not cmu.task_ids for cmu in cmus)

    def test_register_zeroed_at_deploy(self):
        controller = FlyMonController(num_groups=1)
        handle = deploy(controller)
        # Dirty the register behind the controller's back, then redeploy
        # into the same range: the reset rule must zero it.
        cmu = handle.rows[0].cmu
        mem = handle.rows[0].mem
        controller.remove_task(handle)
        cmu.register.write(mem.base + 1, 77)
        fresh = deploy(controller)
        assert fresh.rows[0].read().sum() == 0
