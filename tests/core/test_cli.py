"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_full_flag(self):
        args = build_parser().parse_args(["run", "fig11", "--full"])
        assert args.full is True


class TestCommands:
    def test_list_algorithms(self, capsys):
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("cms", "beaucoup", "hll", "max_interarrival", "odd_sketch"):
            assert name in out
        assert "<unavailable" not in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out and "TCAM" in out

    def test_run_fig02(self, capsys):
        assert main(["run", "fig02"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_every_experiment_is_importable(self):
        import importlib

        for module_name in EXPERIMENTS.values():
            module = importlib.import_module(module_name)
            assert callable(module.run)
            assert callable(module.format_result)
