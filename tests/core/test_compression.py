"""Unit tests for compressed-key management and key selectors (§3.1.1)."""

import pytest

from repro.core.compression import (
    CompressedKeyManager,
    KeyExhaustedError,
    KeySelector,
    row_slices,
)
from repro.dataplane.hashing import DynamicHashUnit, HashMask
from repro.dataplane.phv import STANDARD_HEADER_FIELDS


def make_manager(units=3):
    hash_units = [
        DynamicHashUnit(i, STANDARD_HEADER_FIELDS, seed=100 + i) for i in range(units)
    ]
    return CompressedKeyManager(hash_units), hash_units


class TestKeySelector:
    def test_single_unit_slice(self):
        sel = KeySelector((0,), offset=8, width=16)
        assert sel.compute([0xAABBCCDD]) == 0xBBCC

    def test_xor_pair(self):
        sel = KeySelector((0, 1))
        assert sel.compute([0xF0F0, 0x0F0F]) == 0xFFFF

    def test_validation(self):
        with pytest.raises(ValueError):
            KeySelector((0, 1, 2))
        with pytest.raises(ValueError):
            KeySelector((0,), offset=20, width=16)
        with pytest.raises(ValueError):
            KeySelector((0,), width=0)

    def test_with_slice(self):
        sel = KeySelector((1,)).with_slice(4, 8)
        assert sel.units == (1,) and sel.offset == 4 and sel.width == 8


class TestAcquire:
    def test_fresh_acquire_configures_free_unit(self):
        mgr, _ = make_manager()
        grant = mgr.acquire({"src_ip": 32})
        assert len(grant.new_masks) == 1
        assert grant.selector.units == (grant.new_masks[0][0],)

    def test_exact_reuse_needs_no_rules(self):
        mgr, _ = make_manager()
        first = mgr.acquire({"src_ip": 32})
        second = mgr.acquire({"src_ip": 32})
        assert second.new_masks == []
        assert second.selector.units == first.selector.units

    def test_xor_composition_of_two_existing(self):
        """IP-pair = C(SrcIP) xor C(DstIP) without a new hash mask (§3.1.1)."""
        mgr, _ = make_manager()
        a = mgr.acquire({"src_ip": 32})
        b = mgr.acquire({"dst_ip": 32})
        pair = mgr.acquire({"src_ip": 32, "dst_ip": 32})
        assert pair.new_masks == []
        assert set(pair.selector.units) == {a.selector.units[0], b.selector.units[0]}

    def test_partial_plus_free_unit(self):
        mgr, _ = make_manager()
        mgr.acquire({"src_ip": 32})
        pair = mgr.acquire({"src_ip": 32, "src_port": 16})
        # One new mask for the remainder (src_port), XOR'd with the existing.
        assert len(pair.new_masks) == 1
        assert dict(pair.new_masks[0][1].field_bits) == {"src_port": 16}
        assert len(pair.selector.units) == 2

    def test_exhaustion(self):
        mgr, _ = make_manager(units=2)
        mgr.acquire({"src_ip": 32})
        mgr.acquire({"dst_ip": 32})
        with pytest.raises(KeyExhaustedError):
            mgr.acquire({"src_port": 16})

    def test_empty_key_rejected(self):
        mgr, _ = make_manager()
        with pytest.raises(ValueError):
            mgr.acquire({})

    def test_prefix_masks_are_distinct_keys(self):
        mgr, _ = make_manager()
        full = mgr.acquire({"src_ip": 32})
        prefix = mgr.acquire({"src_ip": 24})
        assert full.selector.units != prefix.selector.units


class TestRelease:
    def test_release_frees_unit_for_reconfiguration(self):
        mgr, _ = make_manager(units=1)
        grant = mgr.acquire({"src_ip": 32})
        mgr.release(grant.selector)
        regrant = mgr.acquire({"dst_ip": 32})
        assert len(regrant.new_masks) == 1

    def test_refcounted_release(self):
        mgr, _ = make_manager(units=1)
        g1 = mgr.acquire({"src_ip": 32})
        g2 = mgr.acquire({"src_ip": 32})
        mgr.release(g1.selector)
        # Still referenced by g2: the mask stays committed.
        assert mgr.has_mask({"src_ip": 32})
        mgr.release(g2.selector)
        assert not mgr.has_mask({"src_ip": 32})

    def test_mask_overlap_scoring(self):
        mgr, _ = make_manager()
        mgr.acquire({"src_ip": 32})
        assert mgr.mask_overlap({"src_ip": 32}) == 1
        assert mgr.mask_overlap({"dst_ip": 32}) == 0


class TestRowSlices:
    def test_distinct_offsets(self):
        slices = row_slices(3, 16)
        assert slices == [(0, 16), (8, 16), (16, 16)]

    def test_single_row(self):
        assert row_slices(1, 16) == [(0, 16)]

    def test_slices_fit_in_word(self):
        for depth in (1, 2, 3, 4):
            for bits in (8, 12, 16):
                for offset, width in row_slices(depth, bits):
                    assert offset + width <= 32

    def test_invalid_address_bits(self):
        with pytest.raises(ValueError):
            row_slices(3, 0)
