"""Shared fixtures for the FlyMon reproduction test suite."""

import pytest

from repro.core.controller import FlyMonController
from repro.traffic import zipf_trace


@pytest.fixture
def small_trace():
    """A deterministic 10k-packet Zipf trace (1k flows)."""
    return zipf_trace(num_flows=1_000, num_packets=10_000, seed=42)


@pytest.fixture
def controller():
    """A three-group controller (enough for every chained algorithm)."""
    return FlyMonController(num_groups=3)


@pytest.fixture
def single_group_controller():
    return FlyMonController(num_groups=1)
