"""Bench: Figure 14 -- measurement accuracy across six tasks (a-g)."""

from conftest import run_once

from repro.experiments import (
    fig14a_heavy_hitter,
    fig14b_probabilistic,
    fig14c_ddos,
    fig14d_cardinality,
    fig14e_entropy,
    fig14f_interarrival,
    fig14g_existence,
)


def test_fig14a_heavy_hitter(benchmark, quick):
    result = run_once(benchmark, fig14a_heavy_hitter.run, quick=quick)
    print()
    print(fig14a_heavy_hitter.format_result(result))
    top = result["series"][-1]  # largest memory point
    # Counter-based algorithms reach near-perfect F1 with enough memory.
    assert top["FlyMon-CMS (d=3)"] > 0.95
    assert top["FlyMon-SuMax (d=3)"] > 0.95
    # SuMax is at least as memory-efficient as CMS at every point.
    for point in result["series"]:
        assert point["FlyMon-SuMax (d=3)"] >= point["FlyMon-CMS (d=3)"] - 0.02
    # Coupon-based detection trails the counter-based algorithms.
    assert top["BeauCoup (d=1)"] <= top["FlyMon-SuMax (d=3)"]


def test_fig14b_probabilistic(benchmark, quick):
    result = run_once(benchmark, fig14b_probabilistic.run, quick=quick)
    print()
    print(fig14b_probabilistic.format_result(result))
    # §5.3: probabilistic execution has little effect on heavy hitters.
    for point in result["series"]:
        assert point["p=0.125"] > 0.85
        assert point["p=1.0"] - point["p=0.125"] < 0.15


def test_fig14c_ddos(benchmark, quick):
    result = run_once(benchmark, fig14c_ddos.run, quick=quick)
    print()
    print(fig14c_ddos.format_result(result))
    top = result["series"][-1]
    # With ample memory the FlyMon variant matches or beats the original.
    assert top["FlyMon-BeauCoup (d=3)"] >= top["BeauCoup (d=3)"] - 0.02
    assert top["FlyMon-BeauCoup (d=3)"] > 0.9
    # More memory never hurts the FlyMon d=3 variant.
    f1s = [p["FlyMon-BeauCoup (d=3)"] for p in result["series"]]
    assert f1s[-1] >= f1s[0]


def test_fig14d_cardinality(benchmark, quick):
    result = run_once(benchmark, fig14d_cardinality.run, quick=quick)
    print()
    print(fig14d_cardinality.format_result(result))
    first, last = result["series"][0], result["series"][-1]
    # The paper's crossover: BeauCoup wins at bytes-scale memory ...
    assert first["BeauCoup"] < first["FlyMon-HLL"]
    assert first["BeauCoup"] < 0.25
    # ... HLL wins with kilobytes.
    assert last["FlyMon-HLL"] < last["BeauCoup"] + 0.02
    assert last["FlyMon-HLL"] < 0.05


def test_fig14e_entropy(benchmark, quick):
    result = run_once(benchmark, fig14e_entropy.run, quick=quick)
    print()
    print(fig14e_entropy.format_result(result))
    last = result["series"][-1]
    # MRAC reaches low RE and is at least as good as UnivMon at the top end.
    assert last["FlyMon-MRAC"] < 0.05
    assert last["FlyMon-MRAC"] <= last["UnivMon"] + 0.01
    # MRAC improves monotonically with memory.
    mrac = [p["FlyMon-MRAC"] for p in result["series"]]
    assert mrac[-1] <= mrac[0]


def test_fig14f_interarrival(benchmark, quick):
    result = run_once(benchmark, fig14f_interarrival.run, quick=quick)
    print()
    print(fig14f_interarrival.format_result(result))
    # ARE falls with memory for both depths.
    for col in ("d=2", "d=3"):
        series = [p[col] for p in result["series"]]
        assert series[-1] < series[0]
    assert result["series"][-1]["d=3"] < 0.5


def test_fig14g_existence(benchmark, quick):
    result = run_once(benchmark, fig14g_existence.run, quick=quick)
    print()
    print(fig14g_existence.format_result(result))
    for point in result["series"]:
        # Bit-packing strictly improves the false-positive rate.
        assert point["w/ Opt"] <= point["w/o Opt"]
    # And reaches a low rate within the memory range.
    assert result["series"][-1]["w/ Opt"] < 0.05
