"""Bench: Figure 11 -- address-translation resource overhead."""

from conftest import run_once

from repro.experiments import fig11_address_translation


def test_fig11_address_translation(benchmark, quick):
    result = run_once(benchmark, fig11_address_translation.run, quick=quick)
    print()
    print(fig11_address_translation.format_result(result))
    # §3.3 / §5.1: 32 partitions within 15% of one stage's TCAM.
    assert result["tcam_usage"][32] < 0.15
    # Both cost curves grow monotonically with the partition count.
    tcam = [result["tcam_usage"][p] for p in (8, 16, 32, 64)]
    phv = [result["phv_bits"][p] for p in (8, 16, 32, 64)]
    assert tcam == sorted(tcam) and phv == sorted(phv)
