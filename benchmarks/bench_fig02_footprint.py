"""Bench: Figure 2 -- static sketch resource footprints."""

from conftest import run_once

from repro.experiments import fig02_footprint


def test_fig02_footprint(benchmark, quick):
    result = run_once(benchmark, fig02_footprint.run, quick=quick)
    print()
    print(fig02_footprint.format_result(result))
    table = result["utilization"]
    # The motivating claim: coexisting single-key sketches pile onto the
    # same resources.
    for resource in ("hash_unit", "stateful_alu"):
        individual = sum(table[s][resource] for s in table if s != "Sum")
        assert abs(table["Sum"][resource] - individual) < 1e-9
    # §2.2 / [65]: a typical-scenario pipeline hosts at most ~4 static keys.
    assert result["max_static_keys"] <= 5
    assert max(table["Sum"].values()) > 0.1
