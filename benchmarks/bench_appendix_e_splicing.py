"""Bench: Appendix E -- pipeline splicing via mirror + recirculation.

Compares regular cross-stacking (9 groups / 27 CMUs) with the spliced
layout (12 groups / 36 CMUs) on resource utilization, and models the
recirculation bandwidth overhead for the traffic share that executes tasks
on spliced groups.
"""

from conftest import run_once

from repro.core.cmu_group import CmuGroup
from repro.core.placement import (
    apply_placements,
    apply_spliced_placements,
    plan_cross_stacking,
    plan_spliced_stacking,
    recirculation_overhead,
)
from repro.dataplane.pipeline import Pipeline


def run_splice_comparison(quick=True):
    regular = Pipeline(num_stages=12)
    apply_placements(
        regular, [CmuGroup(g) for g in range(9)], plan_cross_stacking(12, 9)
    )
    spliced = Pipeline(num_stages=12)
    apply_spliced_placements(
        spliced, [CmuGroup(g) for g in range(12)], plan_spliced_stacking(12)
    )
    return {
        "regular": {"groups": 9, "cmus": 27, "util": regular.utilization()},
        "spliced": {"groups": 12, "cmus": 36, "util": spliced.utilization()},
        "overhead_examples": {
            frac: recirculation_overhead(frac) for frac in (0.0, 0.1, 0.25)
        },
    }


def test_appendix_e_splicing(benchmark, quick):
    result = run_once(benchmark, run_splice_comparison, quick=quick)
    print("\nAppendix E -- spliced vs regular cross-stacking")
    for name in ("regular", "spliced"):
        r = result[name]
        print(
            f"  {name}: {r['groups']} groups / {r['cmus']} CMUs, "
            f"hash {r['util']['hash_units']:.0%}, salu {r['util']['salus']:.0%}"
        )
    print(f"  recirculation overhead: {result['overhead_examples']}")

    # Splicing adds exactly 3 groups and lifts hash/SALU utilization to the
    # per-stage ceilings.
    assert result["spliced"]["groups"] - result["regular"]["groups"] == 3
    assert result["spliced"]["util"]["hash_units"] > result["regular"]["util"]["hash_units"]
    assert result["spliced"]["util"]["salus"] > result["regular"]["util"]["salus"]
    # Overhead is proportional to mirrored traffic, zero when unused.
    assert result["overhead_examples"][0.0] == 0.0
    assert result["overhead_examples"][0.25] == 0.25
