"""Ablation benches for the design choices DESIGN.md calls out.

1. Less-copy compression: does hashing a 32-bit compressed key instead of
   the full flow key hurt accuracy? (§3.1.1: "little effect")
2. Sub-slice rows: do d rows addressed by sub-slices of *one* compressed
   key lose accuracy versus d independent hashes? (§3.2: "negligible")
3. Address-translation strategy: shift vs TCAM -- identical accuracy,
   different resource/rule costs (§3.3).
"""

import numpy as np
from conftest import run_once

from repro.analysis.metrics import average_relative_error
from repro.core.task import AttributeSpec, MeasurementTask
from repro.dataplane.hashing import HashFunction, hash_family
from repro.experiments.common import deploy_and_process, evaluation_trace
from repro.sketches import CountMinSketch
from repro.traffic.flows import KEY_SRC_IP


def _compression_ablation(quick=True):
    """CMS addressed through a 32-bit compressed key vs the raw key."""
    trace = evaluation_trace(quick)
    truth = trace.flow_sizes(KEY_SRC_IP)
    width, depth = 2048, 3

    direct = CountMinSketch(width=width, depth=depth, seed=0xA1)
    compressed = CountMinSketch(width=width, depth=depth, seed=0xA2)
    compressor = HashFunction(0xA3)
    for fields in trace.iter_fields():
        key = KEY_SRC_IP.extract(fields)
        direct.update(key)
        compressed.update(compressor.hash_int(key[0]))  # 32-bit digest

    are_direct = average_relative_error(truth, direct.query)
    are_compressed = average_relative_error(
        truth, lambda k: compressed.query(compressor.hash_int(k[0]))
    )
    return {"direct": are_direct, "compressed": are_compressed}


def _subslice_ablation(quick=True):
    """d rows from sub-slices of one 32-bit hash vs d independent hashes."""
    trace = evaluation_trace(quick)
    truth = trace.flow_sizes(KEY_SRC_IP)
    width, depth = 2048, 3
    bits = width.bit_length() - 1

    independent = CountMinSketch(width=width, depth=depth, seed=0xB1)
    sliced = np.zeros((depth, width), dtype=np.int64)
    slicer = HashFunction(0xB2)
    offsets = [0, (32 - bits) // 2, 32 - bits]

    def sliced_cols(key):
        h = slicer.hash_int(key[0])
        return [(h >> off) & (width - 1) for off in offsets]

    for fields in trace.iter_fields():
        key = KEY_SRC_IP.extract(fields)
        independent.update(key)
        for row, col in enumerate(sliced_cols(key)):
            sliced[row, col] += 1

    are_independent = average_relative_error(truth, independent.query)
    are_sliced = average_relative_error(
        truth, lambda k: min(sliced[r, c] for r, c in enumerate(sliced_cols(k)))
    )
    return {"independent": are_independent, "sliced": are_sliced}


def _strategy_ablation(quick=True):
    """Shift vs TCAM address translation: same answers, different rules."""
    trace = evaluation_trace(quick)
    truth = trace.flow_sizes(KEY_SRC_IP)
    out = {}
    for strategy in ("shift", "tcam"):
        from repro.core.controller import FlyMonController

        controller = FlyMonController(
            num_groups=1, strategy=strategy, place_on_pipeline=False
        )
        handle = controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=4096,
                depth=3,
                algorithm="cms",
            )
        )
        controller.process_trace(trace)
        out[strategy] = {
            "are": average_relative_error(truth, handle.algorithm.query),
            "rules": handle.rules_installed,
            "delay_ms": handle.deployment_ms,
        }
    return out


def test_ablation_compression(benchmark, quick):
    result = run_once(benchmark, _compression_ablation, quick=quick)
    print(f"\ncompression ablation: direct ARE {result['direct']:.4f}, "
          f"compressed ARE {result['compressed']:.4f}")
    # §3.1.1: the one-way compression has little effect on accuracy.
    assert result["compressed"] <= result["direct"] + 0.05


def test_ablation_subslice(benchmark, quick):
    result = run_once(benchmark, _subslice_ablation, quick=quick)
    print(f"\nsub-slice ablation: independent ARE {result['independent']:.4f}, "
          f"sliced ARE {result['sliced']:.4f}")
    # §3.2: sub-slices of one compressed key behave like independent hashes.
    assert result["sliced"] <= result["independent"] * 1.5 + 0.05


def test_ablation_translation_strategy(benchmark, quick):
    result = run_once(benchmark, _strategy_ablation, quick=quick)
    print(f"\ntranslation strategy ablation: {result}")
    # Identical accuracy (same hash path) ...
    assert abs(result["shift"]["are"] - result["tcam"]["are"]) < 0.15
    # ... but the shift strategy installs fewer runtime rules.
    assert result["shift"]["rules"] <= result["tcam"]["rules"]
