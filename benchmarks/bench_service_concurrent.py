"""Concurrent query-plane benchmark: sealed-epoch queries under ingest.

The lock-free sealed-read path means querier threads never contend with
ingestion for register state -- only for the interpreter.  This bench
measures sustained sealed-query throughput with 4 querier threads running
while the service ingests and rotates, checks every concurrent answer
bit-identically against the single-threaded reference, and writes
``BENCH_service_concurrent.json``.
"""

import threading
import time

import pytest

from conftest import run_once_timed, write_bench_json

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.service import (
    CardinalityQuery,
    FrequencyQuery,
    HeavyHitterQuery,
    MeasurementService,
    resolve,
)
from repro.traffic import KEY_DST_IP, KEY_SRC_IP, zipf_trace

QUERIER_THREADS = 4


def deploy(controller):
    cms = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=4096,
            depth=3,
            algorithm="cms",
            threshold=100,
        )
    )
    hll = controller.add_task(
        MeasurementTask(
            key=KEY_DST_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=1024,
            depth=1,
            algorithm="hll",
        )
    )
    return cms, hll


def build_service(epoch_packets):
    controller = FlyMonController(num_groups=3)
    cms, hll = deploy(controller)
    service = MeasurementService(controller, epoch_packets=epoch_packets, retain=16)
    return service, cms, hll


@pytest.mark.benchmark(group="service")
def test_service_concurrent(benchmark, quick):
    num_packets = 60_000 if quick else 600_000
    epoch_packets = num_packets // 20
    warm = zipf_trace(
        num_flows=num_packets // 20, num_packets=num_packets // 2, seed=91
    )
    load = zipf_trace(
        num_flows=num_packets // 20, num_packets=num_packets // 2, seed=92
    )

    # Control leg: the same two-phase ingest with no queriers.
    def ingest_alone():
        service, _, _ = build_service(epoch_packets)
        service.ingest(warm)
        start = time.perf_counter()
        service.ingest(load)
        return time.perf_counter() - start

    alone_seconds, _ = run_once_timed(benchmark, ingest_alone)

    # Measured leg: warm up some sealed epochs, precompute the
    # single-threaded answers, then hammer them from QUERIER_THREADS
    # threads while the second half of the trace ingests.
    service, cms, hll = build_service(epoch_packets)
    epochs = service.ingest(warm)
    flows = [(int(v),) for v in warm.columns["src_ip"][:16]]
    queries = (
        [FrequencyQuery(cms, flow) for flow in flows]
        + [CardinalityQuery(hll), HeavyHitterQuery(cms)]
    )
    expected = {
        (sealed.index, qi): resolve(query, sealed)
        for sealed in epochs
        for qi, query in enumerate(queries)
    }

    stop = threading.Event()
    counts = [0] * QUERIER_THREADS
    mismatches = []

    def querier(slot):
        while not stop.is_set():
            for sealed in epochs:
                for qi, query in enumerate(queries):
                    if resolve(query, sealed) != expected[(sealed.index, qi)]:
                        mismatches.append((sealed.index, qi))
                        return
                    counts[slot] += 1

    threads = [
        threading.Thread(target=querier, args=(slot,))
        for slot in range(QUERIER_THREADS)
    ]
    for t in threads:
        t.start()
    start = time.perf_counter()
    try:
        service.ingest(load)
    finally:
        ingest_seconds = time.perf_counter() - start
        stop.set()
        for t in threads:
            t.join()
    assert not mismatches, f"concurrent answers diverged: {mismatches[:3]}"

    total_queries = sum(counts)
    qps = total_queries / ingest_seconds
    write_bench_json(
        "service_concurrent",
        packets=num_packets,
        querier_threads=QUERIER_THREADS,
        queries_total=total_queries,
        queries_per_second=qps,
        ingest_seconds=ingest_seconds,
        ingest_pps=len(load) / ingest_seconds,
        ingest_alone_seconds=alone_seconds,
        ingest_alone_pps=len(load) / alone_seconds,
        params={"packets": num_packets, "querier_threads": QUERIER_THREADS},
    )
    assert total_queries > 0
    print(
        f"service concurrent: {qps:,.0f} sealed queries/s from "
        f"{QUERIER_THREADS} threads while ingesting "
        f"{len(load) / ingest_seconds:,.0f} pps "
        f"(ingest alone: {len(load) / alone_seconds:,.0f} pps)"
    )
