"""Bench: §5.1 -- 96 isolated measurement tasks on one CMU Group.

Deploys 96 tasks (32 minimum-size memory partitions x 3 CMUs) on a single
group, drives traffic, and checks isolation: each task only counts its own
filter's packets.
"""

from conftest import run_once

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import zipf_trace
from repro.traffic.flows import KEY_SRC_IP


def deploy_96_and_run(quick=True):
    controller = FlyMonController(num_groups=1, register_size=1 << 15)
    handles = []
    for i in range(96):
        prefix_octet = 10 + (i % 32)
        handles.append(
            controller.add_task(
                MeasurementTask(
                    key=KEY_SRC_IP,
                    attribute=AttributeSpec.frequency(),
                    memory=(1 << 15) // 32,
                    depth=1,
                    algorithm="cms",
                    filter=TaskFilter.of(src_ip=(prefix_octet << 24, 8)),
                )
            )
        )
    traces = {
        octet: zipf_trace(
            num_flows=50,
            num_packets=500 if quick else 2000,
            seed=octet,
            src_prefix=octet << 24,
        )
        for octet in (10, 20, 41)
    }
    for trace in traces.values():
        controller.process_trace(trace)
    return controller, handles, traces


def test_96_isolated_tasks(benchmark, quick):
    controller, handles, traces = run_once(benchmark, deploy_96_and_run, quick=quick)
    print(f"\n96 tasks deployed on one CMU Group "
          f"(total rules: {controller.runtime.total_rules})")
    assert len(controller.tasks) == 96
    # Tasks observing 10.0.0.0/8 counted those packets ...
    ten_tasks = [h for h in handles if h.task.filter.prefixes[0][1][0] >> 24 == 10]
    assert any(sum(row.read().sum() for row in h.rows) > 0 for h in ten_tasks)
    # ... tasks on prefixes with no traffic stayed empty (isolation).
    idle = [h for h in handles if h.task.filter.prefixes[0][1][0] >> 24 == 15]
    assert all(sum(row.read().sum() for row in h.rows) == 0 for h in idle)
