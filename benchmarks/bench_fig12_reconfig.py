"""Bench: Figure 12 -- reconfiguration impact on forwarding and accuracy."""

from conftest import run_once

from repro.experiments import fig12a_forwarding, fig12b_accuracy


def test_fig12a_forwarding(benchmark, quick):
    result = run_once(benchmark, fig12a_forwarding.run, quick=quick)
    print()
    print(fig12a_forwarding.format_result(result))
    s = result["summary"]
    # FlyMon forwards exactly what the bare pipeline forwards.
    assert s["flymon_gb"] == s["bare_gb"]
    assert s["flymon_interruption_s"] == 0.0
    # Static reloads interrupt traffic 4-8 s each.
    assert s["static_interruption_s"] >= 4.0 * s["static_reloads"]
    assert s["static_gb"] < s["bare_gb"]


def test_fig12b_accuracy(benchmark, quick):
    result = run_once(benchmark, fig12b_accuracy.run, quick=quick)
    print()
    print(fig12b_accuracy.format_result(result))
    s = result["summary"]
    # FlyMon's memory growth holds ARE steady through the surge; the static
    # deployment degrades by a large factor (paper: ~15x).
    assert s["spike_are_flymon"] < 2 * s["calm_are_flymon"]
    assert s["static_vs_flymon_spike_ratio"] > 4.0
    # Task B's insertion/removal never perturbs task A outside the spike.
    calm = [r for r in result["series"] if r["epoch"] not in range(6, 16)]
    ares = [r["are_flymon"] for r in calm]
    assert max(ares) - min(ares) < 0.1
