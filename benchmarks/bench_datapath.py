"""Micro-benchmarks: simulated data-plane packet processing throughput.

Not a paper figure -- these quantify the *simulator's* per-packet cost so
users can size experiment workloads (the real FlyMon forwards at Tofino
line rate by construction; §5.1 shows reconfiguration never touches the
forwarding path).
"""

import pytest

from conftest import run_once_timed, write_bench_json

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import KEY_SRC_IP, zipf_trace


def make_controller(num_tasks: int) -> FlyMonController:
    controller = FlyMonController(num_groups=3)
    for i in range(num_tasks):
        controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=4096,
                depth=3,
                algorithm="cms",
                filter=TaskFilter.of(src_ip=((10 + i) << 24, 8)),
            )
        )
    return controller


@pytest.fixture(scope="module")
def packets():
    trace = zipf_trace(num_flows=500, num_packets=5_000, seed=20)
    return [fields for fields in trace.iter_fields()]


def _drive(controller, packets):
    for fields in packets:
        controller.process_packet(dict(fields))
    return len(packets)


def _throughput_bench(benchmark, packets, num_tasks: int, name: str) -> None:
    controller = make_controller(num_tasks)
    processed, seconds = run_once_timed(benchmark, _drive, controller, packets)
    assert processed == len(packets)
    write_bench_json(
        name,
        seconds=seconds,
        packets=processed,
        packets_per_second=processed / seconds if seconds else None,
        params={"tasks": num_tasks},
    )


def test_throughput_one_task(benchmark, packets):
    _throughput_bench(benchmark, packets, 1, "throughput_one_task")


def test_throughput_three_tasks(benchmark, packets):
    _throughput_bench(benchmark, packets, 3, "throughput_three_tasks")


def test_compression_stage_cost(benchmark):
    """Per-packet cost of the compression stage alone (3 hash units)."""
    from repro.core.cmu_group import CmuGroup

    group = CmuGroup(0)
    for mask in ({"src_ip": 32}, {"dst_ip": 32}, {"src_ip": 32, "src_port": 16}):
        grant = group.keys.acquire(mask)
        for unit, m in grant.new_masks:
            group.hash_units[unit].set_mask(m)
    fields = {"src_ip": 0x0A000001, "dst_ip": 0x14000002, "src_port": 1234}

    def compress_many():
        for _ in range(1000):
            group.compress(fields)
        return True

    ok, seconds = run_once_timed(benchmark, compress_many)
    assert ok
    write_bench_json(
        "compression_stage_cost",
        seconds=seconds,
        compressions_per_second=1000 / seconds if seconds else None,
        params={"hash_units": 3},
    )
