"""Micro-benchmarks: simulated data-plane packet processing throughput.

Not a paper figure -- these quantify the *simulator's* per-packet cost so
users can size experiment workloads (the real FlyMon forwards at Tofino
line rate by construction; §5.1 shows reconfiguration never touches the
forwarding path).
"""

import itertools
import os
import time

import pytest

from conftest import run_once_timed, write_bench_json

import repro.core.task as task_mod
from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask, TaskFilter
from repro.traffic import KEY_SRC_IP, zipf_trace


def make_controller(num_tasks: int) -> FlyMonController:
    controller = FlyMonController(num_groups=3)
    for i in range(num_tasks):
        controller.add_task(
            MeasurementTask(
                key=KEY_SRC_IP,
                attribute=AttributeSpec.frequency(),
                memory=4096,
                depth=3,
                algorithm="cms",
                filter=TaskFilter.of(src_ip=((10 + i) << 24, 8)),
            )
        )
    return controller


@pytest.fixture(scope="module")
def packets():
    trace = zipf_trace(num_flows=500, num_packets=5_000, seed=20)
    return [fields for fields in trace.iter_fields()]


def _drive(controller, packets):
    for fields in packets:
        controller.process_packet(dict(fields))
    return len(packets)


def _throughput_bench(benchmark, packets, num_tasks: int, name: str) -> None:
    controller = make_controller(num_tasks)
    processed, seconds = run_once_timed(benchmark, _drive, controller, packets)
    assert processed == len(packets)
    write_bench_json(
        name,
        seconds=seconds,
        packets=processed,
        packets_per_second=processed / seconds if seconds else None,
        params={"tasks": num_tasks},
    )


def test_throughput_one_task(benchmark, packets):
    _throughput_bench(benchmark, packets, 1, "throughput_one_task")


def test_throughput_three_tasks(benchmark, packets):
    _throughput_bench(benchmark, packets, 3, "throughput_three_tasks")


def _heavy_hitter_controller() -> FlyMonController:
    """Fig. 14a-style deployment: depth-3 CMS heavy-hitter task on SrcIP.

    Task ids feed the sampling hash, so the counter is pinned before each
    build to make scalar/batch deployments byte-identical.
    """
    task_mod._task_ids = itertools.count(1)
    controller = FlyMonController(num_groups=3)
    controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=4096,
            depth=3,
            algorithm="cms",
        )
    )
    return controller


def test_datapath_batch(benchmark):
    """Scalar reference path vs the batched vectorized engine.

    Runs the Fig. 14a heavy-hitter workload through two identical
    deployments -- once per-packet, once in column batches -- verifies the
    register state matches bit-for-bit, and persists the speedup to
    ``BENCH_datapath_batch.json``.  The packet budget honors
    ``FLYMON_BENCH_PACKETS`` so CI smoke runs stay cheap.
    """
    num_packets = int(os.environ.get("FLYMON_BENCH_PACKETS", "0")) or (
        200_000 if os.environ.get("FLYMON_FULL", "") == "1" else 20_000
    )
    batch_size = 8192
    trace = zipf_trace(num_flows=2_000, num_packets=num_packets, seed=14)

    scalar = _heavy_hitter_controller()
    batched = _heavy_hitter_controller()

    def compare():
        start = time.perf_counter()
        scalar.process_trace(trace, batch_size=None)
        scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        batched.process_trace(trace, batch_size=batch_size)
        batch_seconds = time.perf_counter() - start
        return scalar_seconds, batch_seconds

    (scalar_seconds, batch_seconds), _total = run_once_timed(benchmark, compare)

    # Bit-identical register state is the engine's contract.
    for group_scalar, group_batch in zip(scalar.groups, batched.groups):
        for cmu_scalar, cmu_batch in zip(group_scalar.cmus, group_batch.cmus):
            reg_scalar, reg_batch = cmu_scalar.register, cmu_batch.register
            assert (
                reg_scalar.read_range(0, reg_scalar.size)
                == reg_batch.read_range(0, reg_batch.size)
            ).all()

    scalar_pps = num_packets / scalar_seconds if scalar_seconds else None
    batch_pps = num_packets / batch_seconds if batch_seconds else None
    speedup = (
        scalar_seconds / batch_seconds
        if scalar_seconds and batch_seconds
        else None
    )
    write_bench_json(
        "datapath_batch",
        scalar_seconds=scalar_seconds,
        batch_seconds=batch_seconds,
        scalar_pps=scalar_pps,
        batch_pps=batch_pps,
        speedup=speedup,
        num_packets=num_packets,
        batch_size=batch_size,
        params={"tasks": 1, "algorithm": "cms", "depth": 3},
    )
    # Modest in-test bound; the headline number (>=10x at full scale) lives
    # in the JSON so regressions show up in the tracked trajectory.
    assert speedup is not None and speedup > 2.0


def test_compression_stage_cost(benchmark):
    """Per-packet cost of the compression stage alone (3 hash units)."""
    from repro.core.cmu_group import CmuGroup

    group = CmuGroup(0)
    for mask in ({"src_ip": 32}, {"dst_ip": 32}, {"src_ip": 32, "src_port": 16}):
        grant = group.keys.acquire(mask)
        for unit, m in grant.new_masks:
            group.hash_units[unit].set_mask(m)
    fields = {"src_ip": 0x0A000001, "dst_ip": 0x14000002, "src_port": 1234}

    def compress_many():
        for _ in range(1000):
            group.compress(fields)
        return True

    ok, seconds = run_once_timed(benchmark, compress_many)
    assert ok
    write_bench_json(
        "compression_stage_cost",
        seconds=seconds,
        compressions_per_second=1000 / seconds if seconds else None,
        params={"hash_units": 3},
    )


def test_datapath_shard(benchmark):
    """Single-pipeline batched engine vs sharded parallel execution.

    Runs the Fig. 14a heavy-hitter workload through two identical
    deployments -- once as sequential column batches, once sharded over 4
    worker replicas with exact register merging -- verifies registers match
    bit-for-bit, and persists the speedup to ``BENCH_datapath_shard.json``.

    The >=2x speedup bound only applies when the machine actually has the
    cores to parallelize over (cpu_count >= 4); single-core runners still
    assert correctness and record the measured numbers.
    """
    num_packets = int(os.environ.get("FLYMON_BENCH_PACKETS", "0")) or (
        400_000 if os.environ.get("FLYMON_FULL", "") == "1" else 40_000
    )
    workers = 4
    batch_size = 8192
    trace = zipf_trace(num_flows=2_000, num_packets=num_packets, seed=14)

    batched = _heavy_hitter_controller()
    sharded = _heavy_hitter_controller()

    def compare():
        start = time.perf_counter()
        batched.process_trace(trace, batch_size=batch_size)
        batch_seconds = time.perf_counter() - start
        start = time.perf_counter()
        report = sharded.process_trace_sharded(
            trace, workers=workers, batch_size=batch_size
        )
        shard_seconds = time.perf_counter() - start
        return batch_seconds, shard_seconds, report

    (batch_seconds, shard_seconds, report), _total = run_once_timed(
        benchmark, compare
    )
    assert report.fallback is None
    assert report.shards == workers

    # Bit-identical merged register state is the sharding layer's contract.
    identical = True
    for group_batch, group_shard in zip(batched.groups, sharded.groups):
        for cmu_batch, cmu_shard in zip(group_batch.cmus, group_shard.cmus):
            reg_batch, reg_shard = cmu_batch.register, cmu_shard.register
            same = (
                reg_batch.read_range(0, reg_batch.size)
                == reg_shard.read_range(0, reg_shard.size)
            ).all()
            identical = identical and bool(same)
            assert same

    batch_pps = num_packets / batch_seconds if batch_seconds else None
    shard_pps = num_packets / shard_seconds if shard_seconds else None
    speedup = (
        batch_seconds / shard_seconds if batch_seconds and shard_seconds else None
    )
    cpu_count = os.cpu_count() or 1
    write_bench_json(
        "datapath_shard",
        batch_seconds=batch_seconds,
        shard_seconds=shard_seconds,
        batch_pps=batch_pps,
        shard_pps=shard_pps,
        speedup_vs_batched=speedup,
        workers=workers,
        backend=report.backend,
        cpu_count=cpu_count,
        identical=identical,
        num_packets=num_packets,
        batch_size=batch_size,
        params={"tasks": 1, "algorithm": "cms", "depth": 3},
    )
    assert speedup is not None
    if cpu_count >= workers:
        assert speedup > 2.0


def test_datapath_shard_persistent(benchmark):
    """Batched engine vs the *persistent* worker pool, warm.

    The cold pass (fork + replica build) is timed separately; the measured
    pass is the steady state an epoch-rotating service actually pays --
    delta sync, shared-memory column copies, compute, snapshot-out.  Both
    deployments process the trace twice so the accumulated register state
    stays comparable, and the warm report must show ``build_ms == 0`` on
    every shard (the replicas were not rebuilt).

    Persists ``BENCH_datapath_shard_persistent.json``.  The speedup bound
    (warm pool at least matches the batched single pipeline) only applies
    when the machine has the cores (cpu_count >= workers).
    """
    num_packets = int(os.environ.get("FLYMON_BENCH_PACKETS", "0")) or (
        400_000 if os.environ.get("FLYMON_FULL", "") == "1" else 40_000
    )
    workers = 2
    batch_size = 8192
    trace = zipf_trace(num_flows=2_000, num_packets=num_packets, seed=14)

    batched = _heavy_hitter_controller()
    pooled = _heavy_hitter_controller()

    try:
        # Cold pass: fork the pool, build the replicas, first run.  The
        # batched side runs too so both accumulate the same state.
        batched.process_trace(trace, batch_size=batch_size)
        start = time.perf_counter()
        cold_report = pooled.process_trace_sharded(
            trace,
            workers=workers,
            batch_size=batch_size,
            backend="process",
            runtime="persistent",
        )
        cold_seconds = time.perf_counter() - start
        assert cold_report.runtime == "persistent"
        assert cold_report.fallback is None

        def compare():
            start = time.perf_counter()
            batched.process_trace(trace, batch_size=batch_size)
            batch_seconds = time.perf_counter() - start
            start = time.perf_counter()
            report = pooled.process_trace_sharded(
                trace,
                workers=workers,
                batch_size=batch_size,
                backend="process",
                runtime="persistent",
            )
            shard_seconds = time.perf_counter() - start
            return batch_seconds, shard_seconds, report

        (batch_seconds, shard_seconds, report), _total = run_once_timed(
            benchmark, compare
        )
        assert report.runtime == "persistent"
        assert all(t["build_ms"] == 0.0 for t in report.shard_timings)

        identical = True
        for group_batch, group_shard in zip(batched.groups, pooled.groups):
            for cmu_batch, cmu_shard in zip(group_batch.cmus, group_shard.cmus):
                reg_batch, reg_shard = cmu_batch.register, cmu_shard.register
                same = (
                    reg_batch.read_range(0, reg_batch.size)
                    == reg_shard.read_range(0, reg_shard.size)
                ).all()
                identical = identical and bool(same)
                assert same
    finally:
        pooled.close_shard_pool()

    speedup = (
        batch_seconds / shard_seconds if batch_seconds and shard_seconds else None
    )
    cpu_count = os.cpu_count() or 1
    write_bench_json(
        "datapath_shard_persistent",
        batch_seconds=batch_seconds,
        shard_seconds=shard_seconds,
        cold_seconds=cold_seconds,
        batch_pps=num_packets / batch_seconds if batch_seconds else None,
        shard_pps=num_packets / shard_seconds if shard_seconds else None,
        speedup_vs_batched=speedup,
        sync_ms=report.timing.get("sync_ms"),
        transport_ms=sum(t["transport_ms"] for t in report.shard_timings),
        workers=workers,
        backend=report.backend,
        runtime=report.runtime,
        cpu_count=cpu_count,
        identical=identical,
        num_packets=num_packets,
        batch_size=batch_size,
        params={"tasks": 1, "algorithm": "cms", "depth": 3},
    )
    assert speedup is not None
    if cpu_count >= workers:
        # A warm pool must at least match the single batched pipeline.
        assert speedup >= 1.0
