"""Micro-benchmark: telemetry cost on the simulated datapath hot path.

Quantifies (a) the *disabled* overhead of the instrumented
``Pipeline.process`` against the uninstrumented loop body -- the guarded
flag check must stay under 5% (also enforced by
``tests/dataplane/test_telemetry_overhead.py``) -- and (b) the *enabled*
cost with per-stage counters and 1-in-64 sampled spans, so users can judge
whether to leave telemetry on during experiments.
"""

from conftest import run_once_timed, write_bench_json

from repro import telemetry
from repro.dataplane.pipeline import Pipeline

PACKETS = 20_000


def build_pipeline() -> Pipeline:
    pipeline = Pipeline()
    for stage in pipeline.stages:
        stage.add_hook(lambda fields: None)
    return pipeline


def drive(fn, fields, n=PACKETS):
    for _ in range(n):
        fn(fields)
    return n


def test_disabled_overhead(benchmark):
    pipeline = build_pipeline()
    fields = {"src_ip": 0x0A000001, "dst_ip": 0x14000002}

    def uninstrumented(packet_fields, pipeline=pipeline):
        # The exact pre-instrumentation body of Pipeline.process.
        for stage in pipeline.stages:
            stage.process(packet_fields)

    telemetry.disable()
    drive(uninstrumented, fields, 2_000)  # warm-up
    drive(pipeline.process, fields, 2_000)

    def compare():
        from time import perf_counter

        base = instrumented = float("inf")
        for _ in range(5):
            t0 = perf_counter()
            drive(uninstrumented, fields)
            base = min(base, perf_counter() - t0)
            t0 = perf_counter()
            drive(pipeline.process, fields)
            instrumented = min(instrumented, perf_counter() - t0)
        return base, instrumented

    (base, instrumented), seconds = run_once_timed(benchmark, compare)
    overhead = instrumented / base - 1.0
    write_bench_json(
        "telemetry_overhead",
        seconds=seconds,
        packets=PACKETS,
        baseline_seconds=base,
        instrumented_disabled_seconds=instrumented,
        disabled_overhead_fraction=overhead,
        params={"stages": pipeline.num_stages, "hooks_per_stage": 1},
    )
    assert overhead < 0.05, f"telemetry-disabled overhead {overhead:.1%} >= 5%"


def test_enabled_cost(benchmark):
    pipeline = build_pipeline()
    fields = {"src_ip": 0x0A000001, "dst_ip": 0x14000002}
    telemetry.reset()
    telemetry.enable(sample_interval=64)
    try:
        processed, seconds = run_once_timed(benchmark, drive, pipeline.process, fields)
    finally:
        telemetry.disable()
    write_bench_json(
        "telemetry_enabled_cost",
        seconds=seconds,
        packets=processed,
        packets_per_second=processed / seconds if seconds else None,
        params={"sample_interval": 64, "stages": pipeline.num_stages},
    )
    assert processed == PACKETS
