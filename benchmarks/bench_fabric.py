"""Fabric federation benchmark: aggregate ingest throughput vs fleet size.

The same source stream is driven through a 1-, 2-, and 4-switch fabric
(``FabricTopology.preset``), with the collaborative placer deploying the
usual hh+card mix and a full seal barrier at every epoch boundary.  The
interesting quantity is how the federation tax (per-switch dispatch,
N member seals, law-based merge) scales with the switch count on one
box -- a real fleet would spread the member work across machines.

Writes ``BENCH_fabric_scale.json`` with aggregate pps per fleet size and
the single-switch service as the no-federation reference.
"""

import time

import pytest

from conftest import run_once_timed, write_bench_json

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.fabric import FabricService, FabricTopology
from repro.service import MeasurementService
from repro.traffic import KEY_SRC_IP, Trace, zipf_trace
from repro.traffic.flows import KEY_IP_PAIR

#: /8 prefixes whose top two bits are 0..3 -- one per preset(4) block.
BLOCK_PREFIXES = (0x0A000000, 0x50000000, 0x8C000000, 0xDC000000)

PARAMS = {"num_groups": 3}


def fabric_stream(num_packets, seed=95, blocks=4):
    per = num_packets // blocks
    parts = [
        zipf_trace(
            num_flows=max(50, per // 20),
            num_packets=per,
            seed=seed * 101 + b,
            src_prefix=BLOCK_PREFIXES[b],
        )
        for b in range(blocks)
    ]
    return Trace.concatenate(parts).sorted_by_time()


def tasks():
    return [
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=4096,
            depth=3,
            algorithm="cms",
            threshold=100,
        ),
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.distinct(KEY_IP_PAIR),
            memory=4096,
            depth=1,
            algorithm="hll",
        ),
    ]


def solo_reference(trace, epochs):
    """The no-federation baseline: one switch, same tasks, same epoching."""
    service = MeasurementService(
        FlyMonController(place_on_pipeline=False, **PARAMS),
        epoch_packets=len(trace) // epochs,
        retain=8,
    )
    for task in tasks():
        service.controller.add_task(task)
    try:
        service.ingest(trace)
        service.rotate()
        return service.stats()
    finally:
        service.controller.close_shard_pool()


def fabric_run(trace, epochs, switches):
    fabric = FabricService(
        FabricTopology.preset(switches),
        epoch_packets=len(trace) // epochs,
        retain=8,
        controller_params=dict(PARAMS),
    )
    placements = [fabric.deploy(t) for t in tasks()]
    try:
        start = time.perf_counter()
        fabric.ingest(trace)
        fabric.rotate()
        seconds = time.perf_counter() - start
        stats = fabric.stats()
        assert stats["packets_total"] == len(trace)
        assert stats["epoch"] >= epochs
        return seconds, stats, [len(p.hosts) for p in placements]
    finally:
        fabric.stop()


@pytest.mark.benchmark(group="fabric")
def test_fabric_scale(benchmark, quick):
    num_packets = 60_000 if quick else 600_000
    epochs = 10
    trace = fabric_stream(num_packets)

    def reference():
        return solo_reference(trace, epochs)

    ref_stats, ref_seconds = run_once_timed(benchmark, reference)
    assert ref_stats["packets_total"] == len(trace)

    results = {}
    for switches in (1, 2, 4):
        seconds, stats, host_counts = fabric_run(trace, epochs, switches)
        results[f"switches{switches}"] = {
            "seconds": seconds,
            "aggregate_pps": len(trace) / seconds,
            "epochs": stats["epoch"],
            "active_switches": sum(
                1 for n in stats["member_packets"].values() if n
            ),
            "task_host_counts": host_counts,
            "federation_overhead_pct": (
                100.0 * (seconds - ref_seconds) / ref_seconds
            ),
        }

    write_bench_json(
        "fabric_scale",
        packets=len(trace),
        epochs=epochs,
        solo={
            "seconds": ref_seconds,
            "packets_per_second": len(trace) / ref_seconds,
        },
        fabric=results,
        params={"packets": len(trace), "epochs": epochs},
    )
    for name, run in sorted(results.items()):
        print(
            f"fabric {name}: {run['aggregate_pps']:,.0f} pps aggregate over "
            f"{run['epochs']} epochs "
            f"({run['federation_overhead_pct']:+.1f}% vs solo)"
        )
