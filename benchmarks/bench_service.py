"""Streaming-service benchmark: sustained ingest throughput with epoch
rotation, sealing, watchers, and query-plane bookkeeping enabled --
compared against a one-shot replay of the same trace with no epoching.

Writes ``BENCH_service_stream.json`` with both rates so the rotation
overhead (seal + snapshot + reset per epoch) is tracked across commits.
"""

import pytest

from conftest import run_once_timed, write_bench_json

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.service import (
    CardinalityQuery,
    MeasurementService,
    TaskRef,
    Watcher,
    cardinality_metric,
)
from repro.traffic import KEY_DST_IP, KEY_SRC_IP, zipf_trace


def deploy(controller):
    cms = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=4096,
            depth=3,
            algorithm="cms",
            threshold=100,
        )
    )
    hll = controller.add_task(
        MeasurementTask(
            key=KEY_DST_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=1024,
            depth=1,
            algorithm="hll",
        )
    )
    return cms, hll


def stream(trace, epochs, workers):
    controller = FlyMonController(num_groups=3)
    cms, hll = deploy(controller)
    service = MeasurementService(
        controller,
        epoch_packets=len(trace) // epochs,
        retain=8,
        workers=workers,
    )
    service.register_series("card", CardinalityQuery(hll))
    service.add_watcher(
        Watcher("spike", cardinality_metric(TaskRef(hll)), above=1e12)
    )
    service.ingest(trace)
    service.rotate()
    return service.stats()


def one_shot(trace):
    # Same batched fast path the service rides, just without epoching.
    from repro.service.engine import DEFAULT_SERVICE_BATCH

    controller = FlyMonController(num_groups=3)
    deploy(controller)
    controller.process_trace(trace, batch_size=DEFAULT_SERVICE_BATCH)
    return len(trace)


@pytest.mark.benchmark(group="service")
def test_service_stream(benchmark, quick):
    num_packets = 100_000 if quick else 1_000_000
    epochs = 25
    trace = zipf_trace(
        num_flows=num_packets // 20, num_packets=num_packets, seed=90
    )

    baseline, base_seconds = run_once_timed(benchmark, one_shot, trace)
    assert baseline == len(trace)

    results = {}
    for workers in (1, 2):
        import time

        start = time.perf_counter()
        stats = stream(trace, epochs, workers)
        seconds = time.perf_counter() - start
        assert stats["packets_total"] == len(trace)
        assert stats["epoch"] >= epochs
        results[f"workers{workers}"] = {
            "seconds": seconds,
            "packets_per_second": len(trace) / seconds,
            "epochs": stats["epoch"],
        }

    write_bench_json(
        "service_stream",
        packets=len(trace),
        epochs=epochs,
        one_shot={
            "seconds": base_seconds,
            "packets_per_second": len(trace) / base_seconds,
        },
        streaming=results,
        rotation_overhead_pct={
            name: 100.0 * (run["seconds"] - base_seconds) / base_seconds
            for name, run in results.items()
        },
        params={"packets": len(trace), "epochs": epochs},
    )
    for name, run in sorted(results.items()):
        print(
            f"service {name}: {run['packets_per_second']:,.0f} pps over "
            f"{run['epochs']} epochs (one-shot "
            f"{len(trace) / base_seconds:,.0f} pps)"
        )
