"""Streaming-service benchmark: sustained ingest throughput with epoch
rotation, sealing, watchers, and query-plane bookkeeping enabled --
compared against a one-shot replay of the same trace with no epoching.

Writes ``BENCH_service_stream.json`` with both rates so the rotation
overhead (seal + snapshot + reset per epoch) is tracked across commits.
"""

import pytest

from conftest import run_once_timed, write_bench_json

from repro.core.controller import FlyMonController
from repro.core.task import AttributeSpec, MeasurementTask
from repro.service import (
    CardinalityQuery,
    MeasurementService,
    TaskRef,
    Watcher,
    cardinality_metric,
)
from repro.traffic import KEY_DST_IP, KEY_SRC_IP, zipf_trace


def deploy(controller):
    cms = controller.add_task(
        MeasurementTask(
            key=KEY_SRC_IP,
            attribute=AttributeSpec.frequency(),
            memory=4096,
            depth=3,
            algorithm="cms",
            threshold=100,
        )
    )
    hll = controller.add_task(
        MeasurementTask(
            key=KEY_DST_IP,
            attribute=AttributeSpec.distinct(KEY_SRC_IP),
            memory=1024,
            depth=1,
            algorithm="hll",
        )
    )
    return cms, hll


def stream(trace, epochs, workers, runtime=None, chunk=None):
    """Run the epoch-rotating service over ``trace``; ``epochs=1`` with a
    ``chunk`` gives the rotation-free control run whose ingest windows (and
    therefore shard dispatches) match the rotating run's exactly."""
    from repro.traffic.packet import PACKET_FIELDS
    from repro.traffic.trace import Trace

    controller = FlyMonController(num_groups=3)
    cms, hll = deploy(controller)
    service = MeasurementService(
        controller,
        epoch_packets=(len(trace) + 1) if epochs == 1 else len(trace) // epochs,
        retain=8,
        workers=workers,
        runtime=runtime,
    )
    service.register_series("card", CardinalityQuery(hll))
    service.add_watcher(
        Watcher("spike", cardinality_metric(TaskRef(hll)), above=1e12)
    )
    try:
        for start in range(0, len(trace), chunk or len(trace)):
            piece = Trace(
                {
                    f: trace.columns[f][start : start + (chunk or len(trace))]
                    for f in PACKET_FIELDS
                }
            )
            service.ingest(piece)
        service.rotate()
        return service.stats()
    finally:
        controller.close_shard_pool()


def one_shot(trace):
    # Same batched fast path the service rides, just without epoching.
    from repro.service.engine import DEFAULT_SERVICE_BATCH

    controller = FlyMonController(num_groups=3)
    deploy(controller)
    controller.process_trace(trace, batch_size=DEFAULT_SERVICE_BATCH)
    return len(trace)


@pytest.mark.benchmark(group="service")
def test_service_stream(benchmark, quick):
    num_packets = 100_000 if quick else 1_000_000
    epochs = 25
    trace = zipf_trace(
        num_flows=num_packets // 20, num_packets=num_packets, seed=90
    )

    baseline, base_seconds = run_once_timed(benchmark, one_shot, trace)
    assert baseline == len(trace)

    import os
    import time

    results = {}
    legs = [
        ("workers1", 1, None),
        ("workers2", 2, None),
        ("workers2_persistent", 2, "persistent"),
    ]
    for name, workers, runtime in legs:
        start = time.perf_counter()
        stats = stream(trace, epochs, workers, runtime=runtime)
        seconds = time.perf_counter() - start
        assert stats["packets_total"] == len(trace)
        assert stats["epoch"] >= epochs
        results[name] = {
            "seconds": seconds,
            "packets_per_second": len(trace) / seconds,
            "epochs": stats["epoch"],
        }

    # Isolate what rotation itself costs on the persistent pool: the same
    # sharded persistent ingest fed in epoch-sized chunks but sealing only
    # once, vs the epoch-rotating run.  Both legs pay identical fork /
    # replica-build / shm / dispatch costs window for window, so the delta
    # is purely seal work (snapshot + digests + series + watchers + the
    # pool's in-place seal broadcast) times the epoch count.
    start = time.perf_counter()
    stats = stream(
        trace, 1, 2, runtime="persistent", chunk=len(trace) // epochs
    )
    no_rotation_seconds = time.perf_counter() - start
    assert stats["packets_total"] == len(trace)
    persistent_rotation_pct = (
        100.0
        * (results["workers2_persistent"]["seconds"] - no_rotation_seconds)
        / no_rotation_seconds
    )

    write_bench_json(
        "service_stream",
        packets=len(trace),
        epochs=epochs,
        one_shot={
            "seconds": base_seconds,
            "packets_per_second": len(trace) / base_seconds,
        },
        streaming=results,
        rotation_overhead_pct={
            name: 100.0 * (run["seconds"] - base_seconds) / base_seconds
            for name, run in results.items()
        },
        persistent_no_rotation_seconds=no_rotation_seconds,
        persistent_rotation_overhead_pct=persistent_rotation_pct,
        params={"packets": len(trace), "epochs": epochs},
    )
    # The pool's reason to exist: keeping workers resident must beat
    # forking and rebuilding replicas for every window.  Small tolerance
    # absorbs timer noise on loaded runners.
    assert (
        results["workers2_persistent"]["seconds"]
        < results["workers2"]["seconds"] * 1.05
    )
    if not quick and (os.cpu_count() or 1) >= 2:
        # At paper scale (40k-packet epochs) in-place sealing must stay
        # under 10% of the sharded ingest itself; at the quick CI scale
        # the per-seal query-plane work (series + watchers) dominates the
        # tiny 4k-packet windows, so the ratio is only tracked in JSON.
        assert persistent_rotation_pct < 10.0
    for name, run in sorted(results.items()):
        print(
            f"service {name}: {run['packets_per_second']:,.0f} pps over "
            f"{run['epochs']} epochs (one-shot "
            f"{len(trace) / base_seconds:,.0f} pps)"
        )


@pytest.mark.benchmark(group="service")
def test_service_wal(benchmark, quick, tmp_path):
    """Durability cost: the same epoch-rotating stream with the WAL off,
    on a single file (one fsync per seal), and segmented with compaction
    (fsync per seal plus periodic roll + base rewrite).

    Writes ``BENCH_service_wal.json`` so the fsync-per-seal tax and the
    segment-roll cost are tracked across commits.
    """
    import time

    from repro.service import ServiceWal

    num_packets = 60_000 if quick else 400_000
    epochs = 20
    trace = zipf_trace(
        num_flows=num_packets // 20, num_packets=num_packets, seed=91
    )

    def run(wal_target=None, segment_seals=None):
        controller = FlyMonController(num_groups=3)
        cms, hll = deploy(controller)
        service = MeasurementService(
            controller, epoch_packets=len(trace) // epochs, retain=8
        )
        service.register_series("card", CardinalityQuery(hll))
        wal = None
        if wal_target is not None:
            wal = ServiceWal(
                str(wal_target), segment_seals=segment_seals
            ).attach(service)
        try:
            start = time.perf_counter()
            service.ingest(trace)
            service.rotate()
            seconds = time.perf_counter() - start
            stats = service.stats()
            assert stats["packets_total"] == len(trace)
            assert stats["epoch"] >= epochs
            return seconds, stats, wal
        finally:
            if wal is not None:
                wal.close()
            controller.close_shard_pool()

    def wal_off():
        return run()[0]

    base_seconds, _ = run_once_timed(benchmark, wal_off)

    single_seconds, _, single_wal = run(wal_target=tmp_path / "flat.wal")
    seg_seconds, _, seg_wal = run(
        wal_target=tmp_path / "seg", segment_seals=4
    )
    assert single_wal.records_written >= epochs
    assert seg_wal.rolls >= 2, "segment threshold never rolled; vacuous"

    def leg(seconds, wal):
        return {
            "seconds": seconds,
            "packets_per_second": len(trace) / seconds,
            "wal_overhead_pct": 100.0 * (seconds - base_seconds) / base_seconds,
            "records_written": wal.records_written,
            "segment_rolls": wal.rolls,
        }

    results = {
        "single": leg(single_seconds, single_wal),
        "segmented": leg(seg_seconds, seg_wal),
    }
    # The roll tax alone: segmented vs single-file on identical streams.
    roll_cost_pct = (
        100.0 * (seg_seconds - single_seconds) / single_seconds
    )
    write_bench_json(
        "service_wal",
        packets=len(trace),
        epochs=epochs,
        wal_off={
            "seconds": base_seconds,
            "packets_per_second": len(trace) / base_seconds,
        },
        wal=results,
        segment_roll_cost_pct=roll_cost_pct,
        params={
            "packets": len(trace),
            "epochs": epochs,
            "segment_seals": 4,
        },
    )
    for name, entry in sorted(results.items()):
        print(
            f"service wal {name}: {entry['packets_per_second']:,.0f} pps "
            f"({entry['wal_overhead_pct']:+.1f}% vs wal-off, "
            f"{entry['segment_rolls']} roll(s))"
        )
