"""Bench: Appendix B -- compressed-key collision probability."""

from conftest import run_once

from repro.experiments import appendix_b_collisions


def test_appendix_b_collisions(benchmark, quick):
    result = run_once(benchmark, appendix_b_collisions.run, quick=quick)
    print()
    print(appendix_b_collisions.format_result(result))
    for row in result["rows"]:
        # Empirical collision fraction tracks 1 - e^{-n/m} closely.
        assert abs(row["measured"] - row["analytic"]) < max(
            0.3 * row["analytic"], 0.002
        )
