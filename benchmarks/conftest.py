"""Benchmark configuration.

Every paper table/figure has one bench; each bench runs its experiment
harness once (``rounds=1`` -- these are end-to-end evaluation regenerations,
not micro-benchmarks) and prints the paper-style rows so ``pytest
benchmarks/ --benchmark-only`` reproduces the whole evaluation section.

Besides the printed rows, every bench persists a machine-readable
``BENCH_<name>.json`` (wall time, parameters, any extra payload) under
``benchmarks/results/`` -- override the directory with ``FLYMON_BENCH_DIR``
-- so the performance trajectory across commits can be tracked.

Set ``FLYMON_FULL=1`` in the environment to run at full (paper-like) scale
instead of the quick CI scale.
"""

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

RESULTS_DIR = Path(
    os.environ.get("FLYMON_BENCH_DIR", Path(__file__).resolve().parent / "results")
)


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("FLYMON_FULL", "") != "1"


def write_bench_json(name: str, **payload) -> Path:
    """Persist one bench's machine-readable result as ``BENCH_<name>.json``.

    Every artifact is stamped with the environment fingerprint
    (:func:`repro.bench_history.machine_info`: cpu count, python version,
    git SHA, ...), so ``repro bench-compare`` can tell machine-dependent
    absolute numbers apart from portable ratios.
    """
    from repro.bench_history import machine_info

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload.setdefault("name", name)
    payload.setdefault("python", platform.python_version())
    payload.setdefault("machine", platform.machine())
    payload.setdefault("machine_info", machine_info())
    payload.setdefault(
        "recorded_at", datetime.now(timezone.utc).isoformat(timespec="seconds")
    )
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path


def _bench_name(benchmark, fn) -> str:
    raw = getattr(benchmark, "name", None) or fn.__name__
    raw = raw.split("[")[0]  # strip any parametrization id
    return raw[5:] if raw.startswith("test_") else raw


def run_once(benchmark, fn, *args, params=None, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Also writes ``BENCH_<name>.json`` (name derived from the test) with the
    measured wall time and the call parameters.
    """
    result, seconds = run_once_timed(benchmark, fn, *args, **kwargs)
    write_bench_json(
        _bench_name(benchmark, fn),
        seconds=seconds,
        params=params if params is not None else dict(kwargs),
    )
    return result


def run_once_timed(benchmark, fn, *args, **kwargs):
    """Like :func:`run_once` but returns ``(result, seconds)`` and writes no
    JSON -- for benches that derive throughput figures before persisting."""
    timing = {}

    def timed(*call_args, **call_kwargs):
        start = time.perf_counter()
        out = fn(*call_args, **call_kwargs)
        timing["seconds"] = time.perf_counter() - start
        return out

    result = benchmark.pedantic(timed, args=args, kwargs=kwargs, rounds=1, iterations=1)
    return result, timing["seconds"]
