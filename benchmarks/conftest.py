"""Benchmark configuration.

Every paper table/figure has one bench; each bench runs its experiment
harness once (``rounds=1`` -- these are end-to-end evaluation regenerations,
not micro-benchmarks) and prints the paper-style rows so ``pytest
benchmarks/ --benchmark-only`` reproduces the whole evaluation section.

Set ``FLYMON_FULL=1`` in the environment to run at full (paper-like) scale
instead of the quick CI scale.
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("FLYMON_FULL", "") != "1"


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
