"""Bench-history command-line wrapper (see :mod:`repro.bench_history`).

Usage (run with ``PYTHONPATH=src``)::

    python benchmarks/history.py record   # append results to the ledger
    python benchmarks/history.py baseline # snapshot results as the baseline
    python benchmarks/history.py compare  # diff results against the baseline

``repro bench-compare`` is the richer CLI form of ``compare``; this script
exists so CI and scripts can drive the ledger without the installed
entry point.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench_history import (  # noqa: E402
    DEFAULT_THRESHOLD,
    compare,
    format_report,
    load_baseline,
    load_results,
    record_history,
    write_baseline,
)

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_RESULTS = BENCH_DIR / "results"
DEFAULT_HISTORY = BENCH_DIR / "results" / "history.jsonl"
DEFAULT_BASELINE = BENCH_DIR / "baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=["record", "baseline", "compare"])
    parser.add_argument("--results-dir", default=str(DEFAULT_RESULTS))
    parser.add_argument("--history", default=str(DEFAULT_HISTORY))
    parser.add_argument("--baseline-file", default=str(DEFAULT_BASELINE))
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.command == "record":
        entry = record_history(args.results_dir, args.history)
        print(
            f"recorded {len(entry['benches'])} bench(es) to {args.history}"
        )
        return 0
    if args.command == "baseline":
        entry = write_baseline(args.results_dir, args.baseline_file)
        print(
            f"baseline with {len(entry['benches'])} bench(es) written to "
            f"{args.baseline_file}"
        )
        return 0
    baseline = load_baseline(args.baseline_file)
    if baseline is None:
        print(f"no baseline at {args.baseline_file}; nothing to compare")
        return 0
    report = compare(
        load_results(args.results_dir), baseline, threshold=args.threshold
    )
    print(format_report(report, verbose=args.verbose))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
