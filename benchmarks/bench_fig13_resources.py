"""Bench: Figure 13 -- resource usage and scalability."""

from conftest import run_once

from repro.experiments import fig13_resources


def test_fig13_resources(benchmark, quick):
    result = run_once(benchmark, fig13_resources.run, quick=quick)
    print()
    print(fig13_resources.format_result(result))

    # 13a: a CMU Group's average overhead stays below the paper's 8.3%, and
    # three groups fit alongside switch.p4.
    a = result["fig13a"]
    assert a["avg_group_overhead"] < 0.083
    assert all(v <= 1.0 for v in a["variants"]["+3 CMU-Group"].values())

    # 13b: utilization grows with stages; the 12-stage numbers match §5.2.
    b = result["fig13b"]["series"]
    assert abs(b[12]["hash"] - 0.75) < 1e-9
    assert abs(b[12]["salu"] - 0.5625) < 1e-9

    # 13c: compression wins by >= 5x at 350+ bit candidate keys.
    c = {s["key_bits"]: s for s in result["fig13c"]["series"]}
    assert c[360]["with_compression"] >= 5 * c[360]["without_compression"]
