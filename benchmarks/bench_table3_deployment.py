"""Bench: Table 3 -- built-in algorithm deployment delay and CMUG usage."""

from conftest import run_once

from repro.experiments import table3_deployment


def test_table3_deployment(benchmark, quick):
    result = run_once(benchmark, table3_deployment.run, quick=quick)
    print()
    print(table3_deployment.format_result(result))
    rows = {r["algorithm"]: r for r in result["rows"]}

    # §5.1: every algorithm deploys within 100 ms.
    assert all(r["delay_ms"] < 100 for r in result["rows"])
    # BeauCoup is the slowest (runtime one-hot coupon entries).
    slowest = max(result["rows"], key=lambda r: r["delay_ms"])
    assert slowest["algorithm"] == "beaucoup"
    # HLL and MRAC are the fastest.
    fastest = sorted(result["rows"], key=lambda r: r["delay_ms"])[:3]
    assert {"hll", "mrac"} <= {r["algorithm"] for r in fastest}
    # CMU Group usage matches Table 3 where published.
    for name, row in rows.items():
        if row["paper_cmug_usage"] is not None:
            assert row["cmug_usage"] == row["paper_cmug_usage"], name
